// Package rdf implements the RDF/S data model SQPeer builds on: terms,
// triples, namespaces, schema graphs with class/property subsumption, and
// in-memory description bases with wildcard matching.
//
// The package is self-contained (stdlib only) and deliberately covers the
// fragment of RDF/S the SQPeer paper relies on: classes and properties with
// domain/range typing, rdfs:subClassOf / rdfs:subPropertyOf reasoning, and
// resource descriptions (triples) stored in indexed bases.
package rdf

import (
	"fmt"
	"strings"
)

// IRI identifies a resource, class or property. IRIs compare by string
// equality; the package never resolves them over the network.
type IRI string

// String returns the IRI's textual form.
func (i IRI) String() string { return string(i) }

// Local returns the fragment or final path segment of the IRI, which is the
// human-readable local name (e.g. "C1" for "http://example.org/n1#C1").
func (i IRI) Local() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 && idx+1 < len(s) {
		return s[idx+1:]
	}
	return s
}

// Namespace returns the IRI up to and including the last '#' or '/', i.e.
// the namespace part of a qualified name.
func (i IRI) Namespace() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 {
		return s[:idx+1]
	}
	return ""
}

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The three RDF term kinds.
const (
	// KindIRI is a resource identified by an IRI.
	KindIRI TermKind = iota
	// KindLiteral is a (possibly typed) literal value.
	KindLiteral
	// KindBlank is an anonymous (blank) node with a base-scoped id.
	KindBlank
)

// String names the kind for diagnostics.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Term is an RDF term: an IRI, a literal or a blank node. Term is a small
// comparable value type so it can key maps and appear in Triple values.
type Term struct {
	// Kind discriminates the interpretation of Value.
	Kind TermKind
	// Value holds the IRI text, the literal lexical form, or the blank id.
	Value string
	// Datatype is the literal's datatype IRI, empty for plain literals and
	// for non-literal terms.
	Datatype IRI
}

// NewIRI returns an IRI term.
func NewIRI(iri IRI) Term { return Term{Kind: KindIRI, Value: string(iri)} }

// NewLiteral returns a plain (untyped) literal term.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewTypedLiteral returns a literal term with an explicit datatype.
func NewTypedLiteral(lex string, dt IRI) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: dt}
}

// NewBlank returns a blank-node term with the given base-scoped id.
func NewBlank(id string) Term { return Term{Kind: KindBlank, Value: id} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IRI returns the term's IRI. It panics if the term is not an IRI; callers
// should check IsIRI first when the kind is not statically known.
func (t Term) IRI() IRI {
	if t.Kind != KindIRI {
		panic(fmt.Sprintf("rdf: IRI() on %s term %q", t.Kind, t.Value))
	}
	return IRI(t.Value)
}

// Zero reports whether the term is the zero Term, used as a wildcard in
// Base.Match.
func (t Term) Zero() bool { return t == Term{} }

// String renders the term in an N-Triples-like form.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindLiteral:
		if t.Datatype != "" {
			return fmt.Sprintf("%q^^<%s>", t.Value, t.Datatype)
		}
		return fmt.Sprintf("%q", t.Value)
	case KindBlank:
		return "_:" + t.Value
	default:
		return fmt.Sprintf("?term(%q)", t.Value)
	}
}

// Well-known RDF and RDFS vocabulary IRIs used by the schema layer.
const (
	// RDFType is rdf:type, relating a resource to a class.
	RDFType IRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// RDFSSubClassOf is rdfs:subClassOf.
	RDFSSubClassOf IRI = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	// RDFSSubPropertyOf is rdfs:subPropertyOf.
	RDFSSubPropertyOf IRI = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	// RDFSClass is rdfs:Class.
	RDFSClass IRI = "http://www.w3.org/2000/01/rdf-schema#Class"
	// RDFProperty is rdf:Property.
	RDFProperty IRI = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property"
	// RDFSResource is rdfs:Resource, the top class.
	RDFSResource IRI = "http://www.w3.org/2000/01/rdf-schema#Resource"
	// RDFSLiteral is rdfs:Literal, the class of literal values.
	RDFSLiteral IRI = "http://www.w3.org/2000/01/rdf-schema#Literal"
	// XSDString is xsd:string.
	XSDString IRI = "http://www.w3.org/2001/XMLSchema#string"
	// XSDInteger is xsd:integer.
	XSDInteger IRI = "http://www.w3.org/2001/XMLSchema#integer"
)
