package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

const testNS = "http://example.org/n1#"

// figure1Schema builds the community schema of the paper's Figure 1:
// classes C1..C6, properties prop1(C1→C2), prop2(C2→C3), prop3(C3→C4),
// subclasses C5⊑C1, C6⊑C2, and subproperty prop4(C5→C6) ⊑ prop1.
func figure1Schema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema(testNS)
	for _, c := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		s.MustAddClass(IRI(testNS + c))
	}
	s.MustAddProperty(IRI(testNS+"prop1"), IRI(testNS+"C1"), IRI(testNS+"C2"))
	s.MustAddProperty(IRI(testNS+"prop2"), IRI(testNS+"C2"), IRI(testNS+"C3"))
	s.MustAddProperty(IRI(testNS+"prop3"), IRI(testNS+"C3"), IRI(testNS+"C4"))
	s.MustSetSubClassOf(IRI(testNS+"C5"), IRI(testNS+"C1"))
	s.MustSetSubClassOf(IRI(testNS+"C6"), IRI(testNS+"C2"))
	s.MustAddProperty(IRI(testNS+"prop4"), IRI(testNS+"C5"), IRI(testNS+"C6"))
	s.MustSetSubPropertyOf(IRI(testNS+"prop4"), IRI(testNS+"prop1"))
	if err := s.Validate(); err != nil {
		t.Fatalf("figure-1 schema invalid: %v", err)
	}
	return s
}

func n1(local string) IRI { return IRI(testNS + local) }

func TestSchemaDeclarations(t *testing.T) {
	s := figure1Schema(t)
	if !s.HasClass(n1("C1")) || !s.HasProperty(n1("prop1")) {
		t.Fatal("declared class/property missing")
	}
	if s.HasClass(n1("C9")) || s.HasProperty(n1("prop9")) {
		t.Fatal("undeclared class/property reported present")
	}
	p, ok := s.PropertyByName(n1("prop1"))
	if !ok || p.Domain != n1("C1") || p.Range != n1("C2") {
		t.Fatalf("prop1 declaration wrong: %+v", p)
	}
	if len(s.Classes()) != 6 || len(s.Properties()) != 4 {
		t.Fatalf("got %d classes, %d properties", len(s.Classes()), len(s.Properties()))
	}
}

func TestSchemaDuplicateDeclarationErrors(t *testing.T) {
	s := figure1Schema(t)
	if err := s.AddClass(n1("C1")); err == nil {
		t.Error("duplicate class accepted")
	}
	if err := s.AddProperty(n1("prop1"), n1("C1"), n1("C2")); err == nil {
		t.Error("duplicate property accepted")
	}
}

func TestSchemaUndeclaredEndpointsRejected(t *testing.T) {
	s := NewSchema(testNS)
	s.MustAddClass(n1("C1"))
	if err := s.AddProperty(n1("p"), n1("C1"), n1("Cmissing")); err == nil {
		t.Error("undeclared range accepted")
	}
	if err := s.AddProperty(n1("p"), n1("Cmissing"), n1("C1")); err == nil {
		t.Error("undeclared domain accepted")
	}
	if err := s.SetSubClassOf(n1("C1"), n1("Cmissing")); err == nil {
		t.Error("subClassOf with undeclared super accepted")
	}
	if err := s.SetSubPropertyOf(n1("p"), n1("q")); err == nil {
		t.Error("subPropertyOf on undeclared properties accepted")
	}
}

func TestSchemaLiteralRange(t *testing.T) {
	s := NewSchema(testNS)
	s.MustAddClass(n1("C1"))
	if err := s.AddProperty(n1("title"), n1("C1"), RDFSLiteral); err != nil {
		t.Fatalf("literal-ranged property rejected: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSubsumptionClosure(t *testing.T) {
	s := figure1Schema(t)
	// Reflexive.
	if !s.IsSubClassOf(n1("C1"), n1("C1")) || !s.IsSubPropertyOf(n1("prop1"), n1("prop1")) {
		t.Error("subsumption not reflexive")
	}
	// Direct edges from Figure 1.
	if !s.IsSubClassOf(n1("C5"), n1("C1")) || !s.IsSubClassOf(n1("C6"), n1("C2")) {
		t.Error("direct subclass edges missing")
	}
	if !s.IsSubPropertyOf(n1("prop4"), n1("prop1")) {
		t.Error("prop4 ⊑ prop1 missing — the paper's routing example depends on it")
	}
	// Negative directions.
	if s.IsSubClassOf(n1("C1"), n1("C5")) {
		t.Error("subsumption inverted for classes")
	}
	if s.IsSubPropertyOf(n1("prop1"), n1("prop4")) {
		t.Error("subsumption inverted for properties")
	}
	if s.IsSubPropertyOf(n1("prop2"), n1("prop1")) {
		t.Error("unrelated properties reported subsumed")
	}
	// Everything ⊑ rdfs:Resource.
	if !s.IsSubClassOf(n1("C3"), RDFSResource) {
		t.Error("C3 ⊑ rdfs:Resource should hold")
	}
}

func TestSubsumptionTransitive(t *testing.T) {
	s := NewSchema(testNS)
	for _, c := range []string{"A", "B", "C", "D"} {
		s.MustAddClass(n1(c))
	}
	s.MustSetSubClassOf(n1("C"), n1("B"))
	s.MustSetSubClassOf(n1("B"), n1("A"))
	s.MustSetSubClassOf(n1("D"), n1("C"))
	if !s.IsSubClassOf(n1("D"), n1("A")) {
		t.Error("transitive closure D ⊑ A missing")
	}
	got := s.SuperClasses(n1("D"))
	if len(got) != 4 {
		t.Errorf("SuperClasses(D) = %v, want 4 entries", got)
	}
	subsOfA := s.SubClasses(n1("A"))
	if len(subsOfA) != 4 {
		t.Errorf("SubClasses(A) = %v, want 4 entries", subsOfA)
	}
}

func TestSubsumptionCycleIsEquivalence(t *testing.T) {
	s := NewSchema(testNS)
	s.MustAddClass(n1("X"))
	s.MustAddClass(n1("Y"))
	s.MustSetSubClassOf(n1("X"), n1("Y"))
	s.MustSetSubClassOf(n1("Y"), n1("X"))
	if !s.IsSubClassOf(n1("X"), n1("Y")) || !s.IsSubClassOf(n1("Y"), n1("X")) {
		t.Error("cyclic subclass edges should imply mutual subsumption")
	}
}

func TestSubPropertyDomainRangeValidation(t *testing.T) {
	s := NewSchema(testNS)
	for _, c := range []string{"C1", "C2", "C3"} {
		s.MustAddClass(n1(c))
	}
	s.MustAddProperty(n1("p"), n1("C1"), n1("C2"))
	// q's domain C3 is not a subclass of C1, so q ⊑ p must be rejected.
	s.MustAddProperty(n1("q"), n1("C3"), n1("C2"))
	if err := s.SetSubPropertyOf(n1("q"), n1("p")); err == nil {
		t.Fatal("incompatible subPropertyOf accepted")
	}
	// After rejection the hierarchy must be unchanged.
	if s.IsSubPropertyOf(n1("q"), n1("p")) {
		t.Fatal("rejected edge leaked into the closure")
	}
}

func TestSchemaValidateDetectsLateBreakage(t *testing.T) {
	s := figure1Schema(t)
	// Manually corrupt: redeclare prop4's domain so it no longer ⊑ C1.
	p, _ := s.PropertyByName(n1("prop4"))
	p.Domain = n1("C3")
	s.dirty.Store(true)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed broken subproperty domain")
	}
}

func TestSubAndSuperListsAreSorted(t *testing.T) {
	s := figure1Schema(t)
	subs := s.SubProperties(n1("prop1"))
	if len(subs) != 2 || subs[0] != n1("prop1") || subs[1] != n1("prop4") {
		t.Errorf("SubProperties(prop1) = %v", subs)
	}
	supers := s.SuperProperties(n1("prop4"))
	if len(supers) != 2 || supers[0] != n1("prop1") || supers[1] != n1("prop4") {
		t.Errorf("SuperProperties(prop4) = %v", supers)
	}
}

func TestSchemaString(t *testing.T) {
	s := figure1Schema(t)
	out := s.String()
	for _, want := range []string{"class C5 ⊑ C1", "property prop4: C5 → C6 ⊑ prop1", "property prop1: C1 → C2"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

// TestSubsumptionPartialOrderProperty checks, over random hierarchies, the
// partial-order laws the routing algorithm's soundness rests on:
// reflexivity and transitivity of IsSubClassOf.
func TestSubsumptionPartialOrderProperty(t *testing.T) {
	names := []IRI{}
	for _, c := range []string{"K0", "K1", "K2", "K3", "K4", "K5", "K6", "K7"} {
		names = append(names, n1(c))
	}
	build := func(edges []uint8) *Schema {
		s := NewSchema(testNS)
		for _, c := range names {
			s.MustAddClass(c)
		}
		for _, e := range edges {
			from := names[int(e>>4)%len(names)]
			to := names[int(e&0xf)%len(names)]
			_ = s.SetSubClassOf(from, to)
		}
		return s
	}
	prop := func(edges []uint8) bool {
		s := build(edges)
		for _, a := range names {
			if !s.IsSubClassOf(a, a) {
				return false
			}
			for _, b := range names {
				for _, c := range names {
					if s.IsSubClassOf(a, b) && s.IsSubClassOf(b, c) && !s.IsSubClassOf(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
