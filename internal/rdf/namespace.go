package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespaces maps prefixes (e.g. "n1") to namespace IRIs (e.g.
// "http://example.org/n1#"). It expands qualified names in queries and
// compacts IRIs for display, mirroring the namespace mechanism RQL and RVL
// use to address community schemas.
type Namespaces struct {
	byPrefix map[string]string
	byIRI    map[string]string
}

// NewNamespaces returns an empty namespace table.
func NewNamespaces() *Namespaces {
	return &Namespaces{byPrefix: map[string]string{}, byIRI: map[string]string{}}
}

// Bind associates a prefix with a namespace IRI. Rebinding a prefix
// replaces the old binding.
func (n *Namespaces) Bind(prefix, iri string) {
	if old, ok := n.byPrefix[prefix]; ok {
		delete(n.byIRI, old)
	}
	n.byPrefix[prefix] = iri
	n.byIRI[iri] = prefix
}

// Resolve returns the namespace IRI bound to prefix.
func (n *Namespaces) Resolve(prefix string) (string, bool) {
	iri, ok := n.byPrefix[prefix]
	return iri, ok
}

// Expand turns a qualified name "prefix:local" into a full IRI. A name
// without a colon is returned unchanged as an IRI only when a default ("")
// prefix is bound; otherwise Expand fails.
func (n *Namespaces) Expand(qname string) (IRI, error) {
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		if base, ok := n.byPrefix[""]; ok {
			return IRI(base + qname), nil
		}
		return "", fmt.Errorf("rdf: unqualified name %q and no default namespace", qname)
	}
	prefix, local := qname[:i], qname[i+1:]
	// Absolute IRIs (http://...) pass through untouched.
	if strings.Contains(qname, "://") {
		return IRI(qname), nil
	}
	base, ok := n.byPrefix[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unknown namespace prefix %q in %q", prefix, qname)
	}
	return IRI(base + local), nil
}

// Compact renders an IRI as "prefix:local" when its namespace is bound,
// falling back to the full IRI text.
func (n *Namespaces) Compact(iri IRI) string {
	ns := iri.Namespace()
	if prefix, ok := n.byIRI[ns]; ok {
		return prefix + ":" + iri.Local()
	}
	return string(iri)
}

// Prefixes returns the bound prefixes in sorted order.
func (n *Namespaces) Prefixes() []string {
	out := make([]string, 0, len(n.byPrefix))
	for p := range n.byPrefix {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the table.
func (n *Namespaces) Clone() *Namespaces {
	c := NewNamespaces()
	for p, iri := range n.byPrefix {
		c.Bind(p, iri)
	}
	return c
}
