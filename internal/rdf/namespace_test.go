package rdf

import "testing"

func TestNamespacesBindExpandCompact(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("n1", "http://example.org/n1#")
	ns.Bind("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#")

	iri, err := ns.Expand("n1:C1")
	if err != nil || iri != "http://example.org/n1#C1" {
		t.Fatalf("Expand(n1:C1) = %q, %v", iri, err)
	}
	if got := ns.Compact("http://example.org/n1#C1"); got != "n1:C1" {
		t.Errorf("Compact = %q", got)
	}
	if got := ns.Compact("http://unbound.org/x#y"); got != "http://unbound.org/x#y" {
		t.Errorf("Compact of unbound namespace = %q", got)
	}
}

func TestNamespacesExpandErrors(t *testing.T) {
	ns := NewNamespaces()
	if _, err := ns.Expand("n1:C1"); err == nil {
		t.Error("unknown prefix accepted")
	}
	if _, err := ns.Expand("bare"); err == nil {
		t.Error("unqualified name without default namespace accepted")
	}
	ns.Bind("", "http://default.org/#")
	iri, err := ns.Expand("bare")
	if err != nil || iri != "http://default.org/#bare" {
		t.Errorf("default-namespace expansion = %q, %v", iri, err)
	}
}

func TestNamespacesAbsoluteIRIPassThrough(t *testing.T) {
	ns := NewNamespaces()
	iri, err := ns.Expand("http://example.org/n1#C1")
	if err != nil || iri != "http://example.org/n1#C1" {
		t.Errorf("absolute IRI pass-through = %q, %v", iri, err)
	}
}

func TestNamespacesRebindAndClone(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("n1", "http://a#")
	ns.Bind("n1", "http://b#")
	if got, _ := ns.Resolve("n1"); got != "http://b#" {
		t.Errorf("rebind not applied: %q", got)
	}
	if got := ns.Compact("http://a#x"); got != "http://a#x" {
		t.Errorf("old binding should be dropped from reverse map: %q", got)
	}
	c := ns.Clone()
	c.Bind("n2", "http://c#")
	if _, ok := ns.Resolve("n2"); ok {
		t.Error("Clone not independent")
	}
	if p := ns.Prefixes(); len(p) != 1 || p[0] != "n1" {
		t.Errorf("Prefixes = %v", p)
	}
}
