package rdf

import (
	"strings"
	"testing"
)

const paperSchemaText = `# the paper's Figure-1 schema
schema http://example.org/n1#
class C1
class C2
class C3
class C4
class C5 < C1
class C6 < C2
property prop1 C1 -> C2
property prop2 C2 -> C3
property prop3 C3 -> C4
property prop4 C5 -> C6 < prop1
`

func TestParseSchemaText(t *testing.T) {
	s, err := ParseSchemaText(strings.NewReader(paperSchemaText))
	if err != nil {
		t.Fatalf("ParseSchemaText: %v", err)
	}
	if s.Name != "http://example.org/n1#" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Classes()) != 6 || len(s.Properties()) != 4 {
		t.Fatalf("classes=%d properties=%d", len(s.Classes()), len(s.Properties()))
	}
	if !s.IsSubPropertyOf(n1("prop4"), n1("prop1")) {
		t.Error("prop4 ⊑ prop1 missing")
	}
	if !s.IsSubClassOf(n1("C5"), n1("C1")) {
		t.Error("C5 ⊑ C1 missing")
	}
}

func TestParseSchemaTextLiteralRange(t *testing.T) {
	s, err := ParseSchemaText(strings.NewReader(`schema http://s#
class Doc
property title Doc -> literal
`))
	if err != nil {
		t.Fatalf("ParseSchemaText: %v", err)
	}
	p, _ := s.PropertyByName("http://s#title")
	if p.Range != RDFSLiteral {
		t.Errorf("Range = %s", p.Range)
	}
}

func TestParseSchemaTextAbsoluteIRIs(t *testing.T) {
	s, err := ParseSchemaText(strings.NewReader(`schema http://a#
class http://b#Foreign
class Local
property link Local -> http://b#Foreign
`))
	if err != nil {
		t.Fatalf("ParseSchemaText: %v", err)
	}
	if !s.HasClass("http://b#Foreign") {
		t.Error("absolute class IRI not honoured")
	}
}

func TestParseSchemaTextErrors(t *testing.T) {
	bad := []string{
		``,
		`class C1`,                                     // before schema
		"schema http://a#\nschema http://b#",           // duplicate
		"schema http://a#\nclass",                      // malformed class
		"schema http://a#\nclass C1 C2",                // malformed class
		"schema http://a#\nproperty p C1 C2",           // missing arrow
		"schema http://a#\nproperty p C1 -> C2",        // undeclared classes
		"schema http://a#\nwidget X",                   // unknown directive
		"schema http://a#\nclass C1\nclass C1",         // duplicate class
		"schema http://a#\nclass C1\nclass C2 < Ghost", // undeclared super
		"schema http://a#\nclass C1\nclass C2\nproperty p C1 -> C2 < q", // undeclared superprop
	}
	for _, src := range bad {
		if _, err := ParseSchemaText(strings.NewReader(src)); err == nil {
			t.Errorf("ParseSchemaText(%q) accepted bad input", src)
		}
	}
}

func TestSchemaTextRoundTrip(t *testing.T) {
	s, err := ParseSchemaText(strings.NewReader(paperSchemaText))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSchemaText(&sb, s); err != nil {
		t.Fatalf("WriteSchemaText: %v", err)
	}
	back, err := ParseSchemaText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, sb.String())
	}
	if back.String() != s.String() {
		t.Errorf("round trip diverged:\n%s\nvs\n%s", back, s)
	}
}

func TestParseSchemaTextForwardReference(t *testing.T) {
	// Subclass edge referring to a class declared later must work.
	src := `schema http://a#
class C2 < C1
class C1
`
	s, err := ParseSchemaText(strings.NewReader(src))
	if err != nil {
		t.Fatalf("forward reference rejected: %v", err)
	}
	if !s.IsSubClassOf("http://a#C2", "http://a#C1") {
		t.Error("forward subclass edge missing")
	}
}
