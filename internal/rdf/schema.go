package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Class is an RDF/S class declaration in a community schema.
type Class struct {
	// Name is the class IRI.
	Name IRI
	// Comment is an optional human-readable description.
	Comment string
}

// Property is an RDF/S property declaration with its domain and range
// classes. Range may also be a literal datatype class (e.g. rdfs:Literal)
// for attribute-like properties.
type Property struct {
	// Name is the property IRI.
	Name IRI
	// Domain is the class of subjects the property applies to.
	Domain IRI
	// Range is the class (or literal type) of the property's objects.
	Range IRI
	// Comment is an optional human-readable description.
	Comment string
}

// Schema is a community RDF/S schema: classes and properties within one or
// more namespaces, plus the rdfs:subClassOf and rdfs:subPropertyOf
// hierarchies. Schemas are the intensional backbone of a Semantic Overlay
// Network: query patterns and active-schemas are both expressed against a
// Schema, and the routing algorithm's subsumption checks delegate to it.
//
// Schema methods are not safe for concurrent mutation; concurrent reads
// are safe at any time (the lazy closure rebuild is internally
// synchronized, so many goroutines may query subsumption while the first
// read after a mutation recomputes the closures).
type Schema struct {
	// Name identifies the schema, conventionally its primary namespace IRI.
	Name string

	classes    map[IRI]*Class
	properties map[IRI]*Property

	// direct super edges
	superClass map[IRI][]IRI
	superProp  map[IRI][]IRI

	// closed holds the transitive-reflexive closures, rebuilt lazily: a
	// whole immutable snapshot swapped atomically so concurrent readers
	// never observe a half-built closure. dirty flags that a mutation
	// invalidated it; rebuildMu serializes the (rare) rebuilds.
	closed    atomic.Pointer[closures]
	dirty     atomic.Bool
	rebuildMu sync.Mutex
}

// closures is an immutable snapshot of the schema's hierarchies.
type closures struct {
	classUp map[IRI]map[IRI]bool // class -> all superclasses incl. itself
	propUp  map[IRI]map[IRI]bool // prop  -> all superproperties incl. itself
}

// NewSchema returns an empty schema with the given name.
func NewSchema(name string) *Schema {
	s := &Schema{
		Name:       name,
		classes:    map[IRI]*Class{},
		properties: map[IRI]*Property{},
		superClass: map[IRI][]IRI{},
		superProp:  map[IRI][]IRI{},
	}
	s.dirty.Store(true)
	return s
}

// AddClass declares a class. Re-declaring an existing class is an error so
// schema merge bugs surface early.
func (s *Schema) AddClass(name IRI) error {
	if _, ok := s.classes[name]; ok {
		return fmt.Errorf("rdf: class %s already declared in schema %s", name, s.Name)
	}
	s.classes[name] = &Class{Name: name}
	s.dirty.Store(true)
	return nil
}

// MustAddClass is AddClass for schema literals in tests and examples; it
// panics on error.
func (s *Schema) MustAddClass(name IRI) {
	if err := s.AddClass(name); err != nil {
		panic(err)
	}
}

// AddProperty declares a property with its domain and range. Both end-point
// classes must already be declared unless the range is a literal type.
func (s *Schema) AddProperty(name, domain, rng IRI) error {
	if _, ok := s.properties[name]; ok {
		return fmt.Errorf("rdf: property %s already declared in schema %s", name, s.Name)
	}
	if _, ok := s.classes[domain]; !ok {
		return fmt.Errorf("rdf: property %s: domain class %s not declared", name, domain)
	}
	if !isLiteralType(rng) {
		if _, ok := s.classes[rng]; !ok {
			return fmt.Errorf("rdf: property %s: range class %s not declared", name, rng)
		}
	}
	s.properties[name] = &Property{Name: name, Domain: domain, Range: rng}
	s.dirty.Store(true)
	return nil
}

// MustAddProperty is AddProperty that panics on error.
func (s *Schema) MustAddProperty(name, domain, rng IRI) {
	if err := s.AddProperty(name, domain, rng); err != nil {
		panic(err)
	}
}

func isLiteralType(c IRI) bool {
	return c == RDFSLiteral || c == XSDString || c == XSDInteger
}

// SetSubClassOf records that sub rdfs:subClassOf super. Both classes must
// be declared.
func (s *Schema) SetSubClassOf(sub, super IRI) error {
	if _, ok := s.classes[sub]; !ok {
		return fmt.Errorf("rdf: subClassOf: class %s not declared", sub)
	}
	if _, ok := s.classes[super]; !ok {
		return fmt.Errorf("rdf: subClassOf: class %s not declared", super)
	}
	for _, existing := range s.superClass[sub] {
		if existing == super {
			return nil
		}
	}
	s.superClass[sub] = append(s.superClass[sub], super)
	s.dirty.Store(true)
	return nil
}

// MustSetSubClassOf is SetSubClassOf that panics on error.
func (s *Schema) MustSetSubClassOf(sub, super IRI) {
	if err := s.SetSubClassOf(sub, super); err != nil {
		panic(err)
	}
}

// SetSubPropertyOf records that sub rdfs:subPropertyOf super. RDF/S
// requires the subproperty's domain and range to be subsumed by the
// superproperty's; this is validated eagerly so invalid hierarchies are
// rejected at schema-construction time.
func (s *Schema) SetSubPropertyOf(sub, super IRI) error {
	ps, ok := s.properties[sub]
	if !ok {
		return fmt.Errorf("rdf: subPropertyOf: property %s not declared", sub)
	}
	pp, ok := s.properties[super]
	if !ok {
		return fmt.Errorf("rdf: subPropertyOf: property %s not declared", super)
	}
	for _, existing := range s.superProp[sub] {
		if existing == super {
			return nil
		}
	}
	s.superProp[sub] = append(s.superProp[sub], super)
	s.dirty.Store(true)
	// Validate domain/range compatibility with the new edge in place.
	if !s.IsSubClassOf(ps.Domain, pp.Domain) || !s.isSubRange(ps.Range, pp.Range) {
		// roll back
		edges := s.superProp[sub]
		s.superProp[sub] = edges[:len(edges)-1]
		s.dirty.Store(true)
		return fmt.Errorf("rdf: subPropertyOf %s ⊑ %s: domain/range of %s not subsumed by %s",
			sub, super, sub, super)
	}
	return nil
}

// MustSetSubPropertyOf is SetSubPropertyOf that panics on error.
func (s *Schema) MustSetSubPropertyOf(sub, super IRI) {
	if err := s.SetSubPropertyOf(sub, super); err != nil {
		panic(err)
	}
}

func (s *Schema) isSubRange(sub, super IRI) bool {
	if isLiteralType(sub) || isLiteralType(super) {
		return sub == super || super == RDFSLiteral
	}
	return s.IsSubClassOf(sub, super)
}

// HasClass reports whether the class is declared.
func (s *Schema) HasClass(c IRI) bool { _, ok := s.classes[c]; return ok }

// HasProperty reports whether the property is declared.
func (s *Schema) HasProperty(p IRI) bool { _, ok := s.properties[p]; return ok }

// ClassByName returns the class declaration.
func (s *Schema) ClassByName(c IRI) (*Class, bool) { cl, ok := s.classes[c]; return cl, ok }

// PropertyByName returns the property declaration.
func (s *Schema) PropertyByName(p IRI) (*Property, bool) {
	pr, ok := s.properties[p]
	return pr, ok
}

// Classes returns all declared classes in sorted IRI order.
func (s *Schema) Classes() []*Class {
	out := make([]*Class, 0, len(s.classes))
	for _, c := range s.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Properties returns all declared properties in sorted IRI order.
func (s *Schema) Properties() []*Property {
	out := make([]*Property, 0, len(s.properties))
	for _, p := range s.properties {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// rebuild returns the current closure snapshot, recomputing the
// transitive-reflexive closures of the class and property hierarchies if a
// mutation invalidated them. Cycles (legal in RDFS, implying equivalence)
// are handled naturally by the fixpoint. Safe for concurrent callers: the
// rebuild is serialized and the snapshot swapped atomically, so racing
// readers either see the old complete snapshot or the new one.
func (s *Schema) rebuild() *closures {
	if !s.dirty.Load() {
		if c := s.closed.Load(); c != nil {
			return c
		}
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	if s.dirty.Load() || s.closed.Load() == nil {
		c := &closures{
			classUp: closure(keysOfClasses(s.classes), s.superClass),
			propUp:  closure(keysOfProps(s.properties), s.superProp),
		}
		s.closed.Store(c)
		s.dirty.Store(false)
	}
	return s.closed.Load()
}

func keysOfClasses(m map[IRI]*Class) []IRI {
	out := make([]IRI, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keysOfProps(m map[IRI]*Property) []IRI {
	out := make([]IRI, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// closure computes, for every node, the set of nodes reachable through the
// direct-super edge map, including the node itself (reflexive).
func closure(nodes []IRI, super map[IRI][]IRI) map[IRI]map[IRI]bool {
	up := make(map[IRI]map[IRI]bool, len(nodes))
	for _, n := range nodes {
		seen := map[IRI]bool{n: true}
		stack := []IRI{n}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, sup := range super[cur] {
				if !seen[sup] {
					seen[sup] = true
					stack = append(stack, sup)
				}
			}
		}
		up[n] = seen
	}
	return up
}

// IsSubClassOf reports whether sub ⊑ super in the class hierarchy
// (reflexive and transitive). Undeclared classes are only subsumed by
// themselves and rdfs:Resource.
func (s *Schema) IsSubClassOf(sub, super IRI) bool {
	if sub == super || super == RDFSResource {
		return true
	}
	ups, ok := s.rebuild().classUp[sub]
	return ok && ups[super]
}

// IsSubPropertyOf reports whether sub ⊑ super in the property hierarchy
// (reflexive and transitive).
func (s *Schema) IsSubPropertyOf(sub, super IRI) bool {
	if sub == super {
		return true
	}
	ups, ok := s.rebuild().propUp[sub]
	return ok && ups[super]
}

// SuperClasses returns every superclass of c including c, sorted.
func (s *Schema) SuperClasses(c IRI) []IRI {
	return sortedKeys(s.rebuild().classUp[c])
}

// SubClasses returns every subclass of c including c, sorted. It inverts
// the closure, so cost is linear in schema size.
func (s *Schema) SubClasses(c IRI) []IRI {
	var out []IRI
	for sub, ups := range s.rebuild().classUp {
		if ups[c] {
			out = append(out, sub)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SuperProperties returns every superproperty of p including p, sorted.
func (s *Schema) SuperProperties(p IRI) []IRI {
	return sortedKeys(s.rebuild().propUp[p])
}

// SubProperties returns every subproperty of p including p, sorted.
func (s *Schema) SubProperties(p IRI) []IRI {
	var out []IRI
	for sub, ups := range s.rebuild().propUp {
		if ups[p] {
			out = append(out, sub)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[IRI]bool) []IRI {
	out := make([]IRI, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Freeze computes the closures so subsequent reads are safe for concurrent
// use. Mutating a frozen schema is allowed but re-dirties it.
func (s *Schema) Freeze() { _ = s.rebuild() }

// Validate checks global schema consistency: every property's end-points
// are declared, and the subproperty hierarchy respects domain/range
// subsumption (re-checked globally, since class edges added after a
// property edge can invalidate it).
func (s *Schema) Validate() error {
	var problems []string
	for name, p := range s.properties {
		if !s.HasClass(p.Domain) {
			problems = append(problems, fmt.Sprintf("property %s: undeclared domain %s", name, p.Domain))
		}
		if !isLiteralType(p.Range) && !s.HasClass(p.Range) {
			problems = append(problems, fmt.Sprintf("property %s: undeclared range %s", name, p.Range))
		}
		for _, super := range s.superProp[name] {
			sp, ok := s.properties[super]
			if !ok {
				problems = append(problems, fmt.Sprintf("property %s: undeclared superproperty %s", name, super))
				continue
			}
			if !s.IsSubClassOf(p.Domain, sp.Domain) {
				problems = append(problems, fmt.Sprintf("property %s ⊑ %s: domain %s ⋢ %s", name, super, p.Domain, sp.Domain))
			}
			if !s.isSubRange(p.Range, sp.Range) {
				problems = append(problems, fmt.Sprintf("property %s ⊑ %s: range %s ⋢ %s", name, super, p.Range, sp.Range))
			}
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("rdf: schema %s invalid:\n  %s", s.Name, strings.Join(problems, "\n  "))
	}
	return nil
}

// String renders the schema's declarations in a compact, deterministic
// form used by tests and the CLI.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s\n", s.Name)
	for _, c := range s.Classes() {
		fmt.Fprintf(&b, "  class %s", c.Name.Local())
		if supers := s.superClass[c.Name]; len(supers) > 0 {
			names := make([]string, len(supers))
			for i, x := range supers {
				names[i] = x.Local()
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " ⊑ %s", strings.Join(names, ","))
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Properties() {
		fmt.Fprintf(&b, "  property %s: %s → %s", p.Name.Local(), p.Domain.Local(), p.Range.Local())
		if supers := s.superProp[p.Name]; len(supers) > 0 {
			names := make([]string, len(supers))
			for i, x := range supers {
				names[i] = x.Local()
			}
			sort.Strings(names)
			fmt.Fprintf(&b, " ⊑ %s", strings.Join(names, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
