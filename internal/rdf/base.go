package rdf

import (
	"sort"
	"sync"
)

// Pair is a (subject, object) resource pair related through a property —
// the unit of data SQPeer path patterns produce and channels ship.
type Pair struct {
	// X is the origin (subject) resource.
	X Term
	// Y is the target (object) resource or literal.
	Y Term
}

// Base is an in-memory RDF description base: the extensional store behind
// a peer. It maintains three hash indexes (SPO, POS, OSP) so any
// triple-pattern with fixed terms resolves without scanning, which is what
// the RQL evaluator and the executor's scans rely on.
//
// Base is safe for concurrent use.
type Base struct {
	mu  sync.RWMutex
	spo map[Term]map[Term]map[Term]struct{}
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
	gen uint64
}

// NewBase returns an empty description base.
func NewBase() *Base {
	return &Base{
		spo: map[Term]map[Term]map[Term]struct{}{},
		pos: map[Term]map[Term]map[Term]struct{}{},
		osp: map[Term]map[Term]map[Term]struct{}{},
	}
}

// Add inserts a triple. Duplicate inserts are no-ops. Add reports whether
// the triple was newly inserted.
func (b *Base) Add(t Triple) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if idxHas(b.spo, t.S, t.P, t.O) {
		return false
	}
	idxAdd(b.spo, t.S, t.P, t.O)
	idxAdd(b.pos, t.P, t.O, t.S)
	idxAdd(b.osp, t.O, t.S, t.P)
	b.n++
	b.gen++
	return true
}

// AddAll inserts all triples, returning how many were new.
func (b *Base) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if b.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes a triple, reporting whether it was present.
func (b *Base) Remove(t Triple) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !idxHas(b.spo, t.S, t.P, t.O) {
		return false
	}
	idxDel(b.spo, t.S, t.P, t.O)
	idxDel(b.pos, t.P, t.O, t.S)
	idxDel(b.osp, t.O, t.S, t.P)
	b.n--
	b.gen++
	return true
}

// Has reports whether the triple is present.
func (b *Base) Has(t Triple) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return idxHas(b.spo, t.S, t.P, t.O)
}

// Gen returns the base's mutation generation: it changes on every
// successful Add or Remove, so derived artifacts (statistics, active
// schemas) can be memoized against it.
func (b *Base) Gen() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gen
}

// Len returns the number of stored triples.
func (b *Base) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

// Match returns all triples matching the pattern; zero Terms are
// wildcards. The most selective index for the bound positions is used.
func (b *Base) Match(s, p, o Term) []Triple {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Triple
	b.match(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFunc streams matching triples to fn; fn returning false stops the
// scan early. The base lock is held while fn runs, so fn must not call
// back into the Base's mutating methods.
func (b *Base) MatchFunc(s, p, o Term, fn func(Triple) bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.match(s, p, o, fn)
}

// Count returns the number of triples matching the pattern without
// materializing them; used by the statistics layer.
func (b *Base) Count(s, p, o Term) int {
	n := 0
	b.MatchFunc(s, p, o, func(Triple) bool { n++; return true })
	return n
}

func (b *Base) match(s, p, o Term, fn func(Triple) bool) {
	switch {
	case !s.Zero():
		for pp, objs := range b.spo[s] {
			if !p.Zero() && pp != p {
				continue
			}
			for oo := range objs {
				if !o.Zero() && oo != o {
					continue
				}
				if !fn(Triple{S: s, P: pp, O: oo}) {
					return
				}
			}
		}
	case !p.Zero():
		for oo, subs := range b.pos[p] {
			if !o.Zero() && oo != o {
				continue
			}
			for ss := range subs {
				if !fn(Triple{S: ss, P: p, O: oo}) {
					return
				}
			}
		}
	case !o.Zero():
		for ss, preds := range b.osp[o] {
			for pp := range preds {
				if !fn(Triple{S: ss, P: pp, O: o}) {
					return
				}
			}
		}
	default:
		for ss, props := range b.spo {
			for pp, objs := range props {
				for oo := range objs {
					if !fn(Triple{S: ss, P: pp, O: oo}) {
						return
					}
				}
			}
		}
	}
}

// Triples returns every stored triple (unordered).
func (b *Base) Triples() []Triple {
	return b.Match(Term{}, Term{}, Term{})
}

// InstancesOf returns the resources classified under class c or any of its
// subclasses per the schema. With a nil schema only direct typing counts.
func (b *Base) InstancesOf(c IRI, schema *Schema) []Term {
	classes := []IRI{c}
	if schema != nil {
		classes = schema.SubClasses(c)
	}
	seen := map[Term]struct{}{}
	var out []Term
	for _, cls := range classes {
		for _, t := range b.Match(Term{}, NewIRI(RDFType), NewIRI(cls)) {
			if _, dup := seen[t.S]; !dup {
				seen[t.S] = struct{}{}
				out = append(out, t.S)
			}
		}
	}
	return out
}

// Pairs returns the (subject, object) pairs related through property p or
// any of its subproperties per the schema — the extension of a path
// pattern over this base. With a nil schema only p itself is consulted.
func (b *Base) Pairs(p IRI, schema *Schema) []Pair {
	props := []IRI{p}
	if schema != nil {
		props = schema.SubProperties(p)
	}
	seen := map[Pair]struct{}{}
	var out []Pair
	for _, prop := range props {
		for _, t := range b.Match(Term{}, NewIRI(prop), Term{}) {
			pr := Pair{X: t.S, Y: t.O}
			if _, dup := seen[pr]; !dup {
				seen[pr] = struct{}{}
				out = append(out, pr)
			}
		}
	}
	return out
}

// PairsFunc streams the pairs Pairs would return to fn, in the same
// order, without materializing the pair (or intermediate triple) slices.
// The batch scan leaf consumes millions of pairs per query; building them
// as one throwaway slice per scan dominated that path's allocation. The
// base lock is held while fn runs (see MatchFunc), so fn must not call
// back into the Base's mutating methods.
func (b *Base) PairsFunc(p IRI, schema *Schema, fn func(Pair)) {
	props := []IRI{p}
	if schema != nil {
		props = schema.SubProperties(p)
	}
	if len(props) == 1 {
		// Sole property: the index holds each (s,p,o) once and there is
		// no cross-property overlap, so no seen-set is needed.
		b.MatchFunc(Term{}, NewIRI(props[0]), Term{}, func(t Triple) bool {
			fn(Pair{X: t.S, Y: t.O})
			return true
		})
		return
	}
	seen := map[Pair]struct{}{}
	for _, prop := range props {
		b.MatchFunc(Term{}, NewIRI(prop), Term{}, func(t Triple) bool {
			pr := Pair{X: t.S, Y: t.O}
			if _, dup := seen[pr]; !dup {
				seen[pr] = struct{}{}
				fn(pr)
			}
			return true
		})
	}
}

// PropertiesUsed returns the set of distinct predicate IRIs appearing in
// the base, excluding rdf:type; this is what active-schema derivation
// inspects in the materialized scenario.
func (b *Base) PropertiesUsed() []IRI {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []IRI
	for p := range b.pos {
		if p.IsIRI() && p.IRI() != RDFType {
			out = append(out, p.IRI())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClassesUsed returns the distinct class IRIs appearing as objects of
// rdf:type triples.
func (b *Base) ClassesUsed() []IRI {
	var out []IRI
	seen := map[IRI]struct{}{}
	for _, t := range b.Match(Term{}, NewIRI(RDFType), Term{}) {
		if !t.O.IsIRI() {
			continue
		}
		c := t.O.IRI()
		if _, dup := seen[c]; !dup {
			seen[c] = struct{}{}
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a deep copy of the base.
func (b *Base) Clone() *Base {
	c := NewBase()
	for _, t := range b.Triples() {
		c.Add(t)
	}
	return c
}

func idxAdd(idx map[Term]map[Term]map[Term]struct{}, a, b2, c Term) {
	m1, ok := idx[a]
	if !ok {
		m1 = map[Term]map[Term]struct{}{}
		idx[a] = m1
	}
	m2, ok := m1[b2]
	if !ok {
		m2 = map[Term]struct{}{}
		m1[b2] = m2
	}
	m2[c] = struct{}{}
}

func idxDel(idx map[Term]map[Term]map[Term]struct{}, a, b2, c Term) {
	m1 := idx[a]
	m2 := m1[b2]
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b2)
	}
	if len(m1) == 0 {
		delete(idx, a)
	}
}

func idxHas(idx map[Term]map[Term]map[Term]struct{}, a, b2, c Term) bool {
	m1, ok := idx[a]
	if !ok {
		return false
	}
	m2, ok := m1[b2]
	if !ok {
		return false
	}
	_, ok = m2[c]
	return ok
}
