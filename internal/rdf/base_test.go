package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func res(i int) IRI { return IRI(fmt.Sprintf("http://example.org/data#r%d", i)) }

func TestBaseAddRemoveHas(t *testing.T) {
	b := NewBase()
	tr := Statement(res(1), n1("prop1"), res(2))
	if !b.Add(tr) {
		t.Fatal("first Add returned false")
	}
	if b.Add(tr) {
		t.Fatal("duplicate Add returned true")
	}
	if !b.Has(tr) || b.Len() != 1 {
		t.Fatal("Has/Len wrong after insert")
	}
	if !b.Remove(tr) {
		t.Fatal("Remove returned false for present triple")
	}
	if b.Remove(tr) {
		t.Fatal("second Remove returned true")
	}
	if b.Has(tr) || b.Len() != 0 {
		t.Fatal("Has/Len wrong after remove")
	}
}

func TestBaseMatchWildcards(t *testing.T) {
	b := NewBase()
	b.Add(Statement(res(1), n1("prop1"), res(2)))
	b.Add(Statement(res(1), n1("prop2"), res(3)))
	b.Add(Statement(res(4), n1("prop1"), res(2)))
	b.Add(Typing(res(1), n1("C1")))

	cases := []struct {
		s, p, o Term
		want    int
	}{
		{NewIRI(res(1)), Term{}, Term{}, 3},
		{Term{}, NewIRI(n1("prop1")), Term{}, 2},
		{Term{}, Term{}, NewIRI(res(2)), 2},
		{NewIRI(res(1)), NewIRI(n1("prop1")), Term{}, 1},
		{NewIRI(res(1)), NewIRI(n1("prop1")), NewIRI(res(2)), 1},
		{Term{}, Term{}, Term{}, 4},
		{NewIRI(res(9)), Term{}, Term{}, 0},
		{Term{}, NewIRI(n1("prop9")), Term{}, 0},
	}
	for i, c := range cases {
		if got := len(b.Match(c.s, c.p, c.o)); got != c.want {
			t.Errorf("case %d: Match = %d results, want %d", i, got, c.want)
		}
		if got := b.Count(c.s, c.p, c.o); got != c.want {
			t.Errorf("case %d: Count = %d, want %d", i, got, c.want)
		}
	}
}

func TestBaseMatchFuncEarlyStop(t *testing.T) {
	b := NewBase()
	for i := 0; i < 10; i++ {
		b.Add(Statement(res(i), n1("prop1"), res(i+100)))
	}
	n := 0
	b.MatchFunc(Term{}, NewIRI(n1("prop1")), Term{}, func(Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop delivered %d triples, want 3", n)
	}
}

func TestBaseInstancesOfWithSubclasses(t *testing.T) {
	s := figure1Schema(t)
	b := NewBase()
	b.Add(Typing(res(1), n1("C1")))
	b.Add(Typing(res(2), n1("C5"))) // C5 ⊑ C1
	b.Add(Typing(res(3), n1("C2")))

	got := b.InstancesOf(n1("C1"), s)
	if len(got) != 2 {
		t.Errorf("InstancesOf(C1) with schema = %v, want r1 and r2", got)
	}
	direct := b.InstancesOf(n1("C1"), nil)
	if len(direct) != 1 {
		t.Errorf("InstancesOf(C1) without schema = %v, want only r1", direct)
	}
}

func TestBasePairsWithSubproperties(t *testing.T) {
	s := figure1Schema(t)
	b := NewBase()
	b.Add(Statement(res(1), n1("prop1"), res(2)))
	b.Add(Statement(res(3), n1("prop4"), res(4))) // prop4 ⊑ prop1
	b.Add(Statement(res(5), n1("prop2"), res(6)))

	got := b.Pairs(n1("prop1"), s)
	if len(got) != 2 {
		t.Errorf("Pairs(prop1) with schema = %v, want 2 pairs (prop1 + prop4)", got)
	}
	direct := b.Pairs(n1("prop1"), nil)
	if len(direct) != 1 {
		t.Errorf("Pairs(prop1) without schema = %v, want 1 pair", direct)
	}
	// Duplicate pair via both properties must deduplicate.
	b.Add(Statement(res(1), n1("prop4"), res(2)))
	got = b.Pairs(n1("prop1"), s)
	if len(got) != 2 {
		t.Errorf("Pairs should deduplicate identical pairs, got %v", got)
	}
}

func TestBasePropertiesAndClassesUsed(t *testing.T) {
	b := NewBase()
	b.Add(Statement(res(1), n1("prop1"), res(2)))
	b.Add(Statement(res(1), n1("prop2"), res(3)))
	b.Add(Typing(res(1), n1("C1")))
	props := b.PropertiesUsed()
	if len(props) != 2 {
		t.Errorf("PropertiesUsed = %v (rdf:type must be excluded)", props)
	}
	classes := b.ClassesUsed()
	if len(classes) != 1 || classes[0] != n1("C1") {
		t.Errorf("ClassesUsed = %v", classes)
	}
}

func TestBaseClone(t *testing.T) {
	b := NewBase()
	b.Add(Statement(res(1), n1("prop1"), res(2)))
	c := b.Clone()
	c.Add(Statement(res(3), n1("prop1"), res(4)))
	if b.Len() != 1 || c.Len() != 2 {
		t.Errorf("Clone not independent: b=%d c=%d", b.Len(), c.Len())
	}
}

func TestBaseConcurrentAccess(t *testing.T) {
	b := NewBase()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Add(Statement(res(g*1000+i), n1("prop1"), res(i)))
				b.Match(Term{}, NewIRI(n1("prop1")), Term{})
				b.Count(NewIRI(res(g*1000+i)), Term{}, Term{})
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 8*200 {
		t.Errorf("Len = %d after concurrent adds, want %d", b.Len(), 8*200)
	}
}

// TestBaseIndexAgreementProperty: for random triple sets, the three
// indexes must agree — every triple reachable via a subject scan must be
// reachable via predicate and object scans, and Len must match the number
// of distinct triples inserted.
func TestBaseIndexAgreementProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBase()
		distinct := map[Triple]bool{}
		for i := 0; i < int(n); i++ {
			tr := Statement(res(rng.Intn(10)), n1(fmt.Sprintf("p%d", rng.Intn(4))), res(rng.Intn(10)))
			b.Add(tr)
			distinct[tr] = true
		}
		if b.Len() != len(distinct) {
			return false
		}
		for tr := range distinct {
			if !b.Has(tr) {
				return false
			}
			if len(b.Match(tr.S, Term{}, Term{})) == 0 ||
				len(b.Match(Term{}, tr.P, Term{})) == 0 ||
				len(b.Match(Term{}, Term{}, tr.O)) == 0 {
				return false
			}
		}
		// Full scan must enumerate exactly the distinct set.
		return len(b.Triples()) == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBaseRemoveInverseProperty: removing everything inserted leaves the
// base empty with all index maps drained (no leaked submaps reachable via
// Match).
func TestBaseRemoveInverseProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBase()
		var ts []Triple
		for i := 0; i < int(n); i++ {
			tr := Statement(res(rng.Intn(8)), n1(fmt.Sprintf("p%d", rng.Intn(3))), res(rng.Intn(8)))
			if b.Add(tr) {
				ts = append(ts, tr)
			}
		}
		for _, tr := range ts {
			if !b.Remove(tr) {
				return false
			}
		}
		return b.Len() == 0 && len(b.Triples()) == 0 &&
			len(b.spo) == 0 && len(b.pos) == 0 && len(b.osp) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
