package rdf

import "testing"

func TestIRILocalAndNamespace(t *testing.T) {
	cases := []struct {
		iri   IRI
		local string
		ns    string
	}{
		{"http://example.org/n1#C1", "C1", "http://example.org/n1#"},
		{"http://example.org/n1/prop1", "prop1", "http://example.org/n1/"},
		{"plain", "plain", ""},
		{"http://example.org/n1#", "http://example.org/n1#", "http://example.org/n1#"},
	}
	for _, c := range cases {
		if got := c.iri.Local(); got != c.local {
			t.Errorf("Local(%q) = %q, want %q", c.iri, got, c.local)
		}
		if got := c.iri.Namespace(); got != c.ns {
			t.Errorf("Namespace(%q) = %q, want %q", c.iri, got, c.ns)
		}
	}
}

func TestTermConstructorsAndKinds(t *testing.T) {
	iri := NewIRI("http://x#a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Errorf("IRI term kind flags wrong: %+v", iri)
	}
	if iri.IRI() != "http://x#a" {
		t.Errorf("IRI() = %q", iri.IRI())
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() {
		t.Errorf("literal kind wrong: %+v", lit)
	}
	typed := NewTypedLiteral("42", XSDInteger)
	if typed.Datatype != XSDInteger {
		t.Errorf("typed literal datatype = %q", typed.Datatype)
	}
	blank := NewBlank("b0")
	if !blank.IsBlank() {
		t.Errorf("blank kind wrong: %+v", blank)
	}
	if (Term{}).Zero() != true || iri.Zero() {
		t.Error("Zero() misbehaves")
	}
}

func TestTermIRIPanicsOnNonIRI(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IRI() on literal did not panic")
		}
	}()
	_ = NewLiteral("x").IRI()
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x#a"), "<http://x#a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewTypedLiteral("1", XSDInteger), `"1"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBlank("b1"), "_:b1"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if KindIRI.String() != "iri" || KindLiteral.String() != "literal" || KindBlank.String() != "blank" {
		t.Error("TermKind.String names wrong")
	}
	if TermKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestTripleValidity(t *testing.T) {
	good := Statement("http://x#s", "http://x#p", "http://x#o")
	if !good.Valid() {
		t.Errorf("statement should be valid: %s", good)
	}
	typ := Typing("http://x#s", "http://x#C")
	if !typ.Valid() || typ.P.IRI() != RDFType {
		t.Errorf("typing triple wrong: %s", typ)
	}
	bad := Triple{S: NewLiteral("x"), P: NewIRI("http://x#p"), O: NewIRI("http://x#o")}
	if bad.Valid() {
		t.Error("literal subject should be invalid")
	}
	bad2 := Triple{S: NewIRI("http://x#s"), P: NewLiteral("p"), O: NewIRI("http://x#o")}
	if bad2.Valid() {
		t.Error("literal predicate should be invalid")
	}
}

func TestSortAndFormatTriples(t *testing.T) {
	ts := []Triple{
		Statement("http://x#b", "http://x#p", "http://x#2"),
		Statement("http://x#a", "http://x#p", "http://x#1"),
		Statement("http://x#a", "http://x#p", "http://x#0"),
	}
	out := FormatTriples(ts)
	want := "<http://x#a> <http://x#p> <http://x#0> .\n" +
		"<http://x#a> <http://x#p> <http://x#1> .\n" +
		"<http://x#b> <http://x#p> <http://x#2> .\n"
	if out != want {
		t.Errorf("FormatTriples:\n%s\nwant:\n%s", out, want)
	}
	// FormatTriples must not mutate its input.
	if ts[0].S.Value != "http://x#b" {
		t.Error("FormatTriples mutated input slice")
	}
}
