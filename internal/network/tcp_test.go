package network_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/peer"
)

func TestGatewayCallRoundTrip(t *testing.T) {
	n := echoNet(t, "A")
	g, err := network.ServeTCP(n, "A", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTCP: %v", err)
	}
	defer g.Close()

	c, err := network.DialTCP(g.Addr())
	if err != nil {
		t.Fatalf("DialTCP: %v", err)
	}
	defer c.Close()

	reply, err := c.Call("remote-client", "echo", []byte("over tcp"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "from A: over tcp" {
		t.Errorf("reply = %q", reply)
	}
	// Gateway traffic is accounted on the network.
	if got := n.Counters().PerNodeReceived["A"]; got != 1 {
		t.Errorf("accounted messages to A = %d", got)
	}
}

func TestGatewayPropagatesHandlerErrors(t *testing.T) {
	n := network.New()
	n.AddNode("A")
	n.Handle("A", "boom", func(network.Message) ([]byte, error) {
		return nil, fmt.Errorf("exploded")
	})
	g, err := network.ServeTCP(n, "A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, err := network.DialTCP(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("x", "boom", nil)
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("handler error lost: %v", err)
	}
	if _, err := c.Call("x", "nosuch", nil); err == nil {
		t.Error("unknown kind accepted over tcp")
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	n := echoNet(t, "A")
	g, err := network.ServeTCP(n, "A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := network.DialTCP(g.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for k := 0; k < 20; k++ {
				msg := fmt.Sprintf("c%d-%d", i, k)
				reply, err := c.Call("client", "echo", []byte(msg))
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if string(reply) != "from A: "+msg {
					t.Errorf("reply = %q", reply)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestGatewayServesRealPeerProtocol exposes a full SQPeer node over TCP
// and drives its advertisement-pull and routing handlers from a socket
// client.
func TestGatewayServesRealPeerProtocol(t *testing.T) {
	n := network.New()
	schema := gen.PaperSchema()
	p, err := peer.New(peer.Config{ID: "P1", Kind: peer.SimplePeer, Schema: schema,
		Base: gen.PaperBases(2)["P1"]}, n)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	g, err := network.ServeTCP(n, "P1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	c, err := network.DialTCP(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// adv.pull over TCP returns the peer's advertisement JSON.
	reply, err := c.Call("external", "adv.pull", nil)
	if err != nil {
		t.Fatalf("adv.pull over tcp: %v", err)
	}
	if !strings.Contains(string(reply), "prop1") {
		t.Errorf("advertisement = %s", reply)
	}
}

func TestGatewayCloseIdempotent(t *testing.T) {
	n := echoNet(t, "A")
	g, err := network.ServeTCP(n, "A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := network.DialTCP(g.Addr()); err == nil {
		t.Error("dial succeeded after close")
	}
}
