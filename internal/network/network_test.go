package network_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sqpeer/internal/network"
	"sqpeer/internal/stats"
)

func echoNet(t testing.TB, nodes ...network.NodeID) *network.Network {
	t.Helper()
	n := network.New()
	for _, id := range nodes {
		n.AddNode(id)
		id := id
		n.Handle(id, "echo", func(m network.Message) ([]byte, error) {
			return append([]byte("from "+id+": "), m.Payload...), nil
		})
	}
	return n
}

func TestCallRoundTrip(t *testing.T) {
	n := echoNet(t, "A", "B")
	reply, err := n.Call("A", "B", "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "from B: hi" {
		t.Errorf("reply = %q", reply)
	}
	c := n.Counters()
	if c.Messages != 2 {
		t.Errorf("Messages = %d, want 2 (request + reply)", c.Messages)
	}
	if c.PerKind["echo"] != 1 || c.PerKind["echo.reply"] != 1 {
		t.Errorf("PerKind = %v", c.PerKind)
	}
	if c.PerNodeReceived["B"] != 1 || c.PerNodeReceived["A"] != 1 {
		t.Errorf("PerNodeReceived = %v", c.PerNodeReceived)
	}
	if c.Bytes <= 0 || c.SimulatedMS <= 0 {
		t.Errorf("Bytes=%d SimulatedMS=%f", c.Bytes, c.SimulatedMS)
	}
}

func TestSendOneWay(t *testing.T) {
	n := echoNet(t, "A", "B")
	if err := n.Send("A", "B", "echo", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if c := n.Counters(); c.Messages != 1 {
		t.Errorf("Messages = %d, want 1", c.Messages)
	}
}

func TestDeliveryErrors(t *testing.T) {
	n := echoNet(t, "A", "B")
	if _, err := n.Call("A", "Z", "echo", nil); err == nil {
		t.Error("call to unknown node succeeded")
	}
	if _, err := n.Call("A", "B", "nope", nil); err == nil {
		t.Error("call to unknown kind succeeded")
	}
	n.Fail("B")
	if !n.IsDown("B") {
		t.Error("IsDown(B) = false after Fail")
	}
	if _, err := n.Call("A", "B", "echo", nil); err == nil {
		t.Error("call to failed node succeeded")
	}
	n.Recover("B")
	if _, err := n.Call("A", "B", "echo", nil); err != nil {
		t.Errorf("call after Recover: %v", err)
	}
	n.Partition("A", "B")
	if _, err := n.Call("A", "B", "echo", nil); err == nil {
		t.Error("call across partition succeeded")
	}
	if _, err := n.Call("B", "A", "echo", nil); err == nil {
		t.Error("partition must be symmetric")
	}
	n.Heal("A", "B")
	if _, err := n.Call("A", "B", "echo", nil); err != nil {
		t.Errorf("call after Heal: %v", err)
	}
	// Failed sender is also refused.
	n.Fail("A")
	if _, err := n.Call("A", "B", "echo", nil); err == nil {
		t.Error("call from failed node succeeded")
	}
}

func TestHandlerErrorsPropagate(t *testing.T) {
	n := network.New()
	n.AddNode("A")
	n.AddNode("B")
	n.Handle("B", "boom", func(network.Message) ([]byte, error) {
		return nil, fmt.Errorf("kaput")
	})
	_, err := n.Call("A", "B", "boom", nil)
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("handler error lost: %v", err)
	}
}

func TestLinkAccounting(t *testing.T) {
	n := echoNet(t, "A", "B", "C")
	n.SetLink("A", "B", stats.Link{LatencyMS: 100, BandwidthKBps: 1})
	n.ResetCounters()
	payload := make([]byte, 1000)
	if _, err := n.Call("A", "B", "echo", payload); err != nil {
		t.Fatalf("Call: %v", err)
	}
	slow := n.Counters().SimulatedMS
	n.ResetCounters()
	if _, err := n.Call("A", "C", "echo", payload); err != nil {
		t.Fatalf("Call: %v", err)
	}
	fast := n.Counters().SimulatedMS
	if slow <= fast {
		t.Errorf("slow link accounted %f, default %f", slow, fast)
	}
	if got := n.LinkBetween("A", "B").LatencyMS; got != 100 {
		t.Errorf("LinkBetween = %f", got)
	}
}

func TestSelfMessagesAreFree(t *testing.T) {
	n := echoNet(t, "A")
	n.ResetCounters()
	if _, err := n.Call("A", "A", "echo", make([]byte, 10000)); err != nil {
		t.Fatalf("self call: %v", err)
	}
	if ms := n.Counters().SimulatedMS; ms != 0 {
		t.Errorf("self call accounted %f ms", ms)
	}
}

func TestRemoveNodeAndNodes(t *testing.T) {
	n := echoNet(t, "A", "B", "C")
	if got := n.Nodes(); fmt.Sprint(got) != "[A B C]" {
		t.Errorf("Nodes = %v", got)
	}
	n.RemoveNode("B")
	if got := n.Nodes(); fmt.Sprint(got) != "[A C]" {
		t.Errorf("Nodes after remove = %v", got)
	}
	if _, err := n.Call("A", "B", "echo", nil); err == nil {
		t.Error("call to removed node succeeded")
	}
}

func TestConcurrentTraffic(t *testing.T) {
	n := echoNet(t, "A", "B")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := n.Call("A", "B", "echo", []byte("x")); err != nil {
					t.Errorf("Call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c := n.Counters(); c.Messages != 1600 {
		t.Errorf("Messages = %d, want 1600", c.Messages)
	}
}
