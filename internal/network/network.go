// Package network provides the simulated P2P transport SQPeer runs on in
// this reproduction: named nodes exchanging typed messages over links with
// configurable latency and bandwidth, with full message/byte accounting,
// node failures and link partitions. The paper's algorithms are
// network-agnostic; this substrate exposes exactly the costs the paper
// argues about (number of messages routed, bytes shipped, per-peer query
// load) while keeping experiments deterministic and laptop-fast: latency
// is accounted, not slept — unless SetRealLatency opts a network into
// sleeping a scaled-down version of each transfer, which wall-clock
// benchmarks use to make overlap between concurrent remote scans
// observable.
package network

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sqpeer/internal/pattern"
	"sqpeer/internal/stats"
)

// NodeID names a network node; it coincides with the peer id.
type NodeID = pattern.PeerID

// Message is one application message.
type Message struct {
	// From and To are the endpoints.
	From, To NodeID
	// Kind is the application message type (e.g. "query.route",
	// "chan.packet"); handlers are registered per kind.
	Kind string
	// Payload is the serialized body.
	Payload []byte
}

// Size returns the accounted wire size of the message.
func (m Message) Size() int { return len(m.Payload) + len(m.Kind) + 16 }

// Handler processes an incoming message and returns a reply payload (for
// Call) or nil (for one-way sends).
type Handler func(Message) ([]byte, error)

// Counters aggregates traffic accounting; obtained via Network.Counters.
type Counters struct {
	// Messages is the total number of messages delivered (a Call counts
	// its request and its reply).
	Messages int
	// Bytes is the total accounted payload volume.
	Bytes int
	// SimulatedMS is the total accounted transfer time over link
	// latencies and bandwidths (as if messages were sequential).
	SimulatedMS float64
	// PerKind counts messages by kind.
	PerKind map[string]int
	// PerNodeReceived counts messages received per node — the per-peer
	// query-load metric of §2.2.
	PerNodeReceived map[NodeID]int
}

// Network is the in-process message fabric. It is safe for concurrent
// use; handlers run on the sender's goroutine (synchronous delivery), so
// handlers must not hold locks that senders also hold.
type Network struct {
	mu       sync.RWMutex
	handlers map[NodeID]map[string]Handler
	links    map[linkKey]stats.Link
	downed   map[NodeID]bool
	cut      map[linkKey]bool
	// realLatency > 0 makes every inter-node delivery sleep
	// link.TransferMS × realLatency milliseconds (see SetRealLatency).
	realLatency float64

	cmu      sync.Mutex
	counters Counters
}

type linkKey struct{ a, b NodeID }

func normKey(a, b NodeID) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// New returns an empty network.
func New() *Network {
	return &Network{
		handlers: map[NodeID]map[string]Handler{},
		links:    map[linkKey]stats.Link{},
		downed:   map[NodeID]bool{},
		cut:      map[linkKey]bool{},
	}
}

// AddNode registers a node with no handlers yet. Adding an existing node
// is a no-op.
func (n *Network) AddNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[id]; !ok {
		n.handlers[id] = map[string]Handler{}
	}
}

// Handle registers the handler for a message kind at a node.
func (n *Network) Handle(id NodeID, kind string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[id]; !ok {
		n.handlers[id] = map[string]Handler{}
	}
	n.handlers[id][kind] = h
}

// RemoveNode unregisters a node entirely (it leaves the system).
func (n *Network) RemoveNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
	delete(n.downed, id)
}

// Nodes returns the registered node ids, sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLink configures the link between two nodes (symmetric).
func (n *Network) SetLink(a, b NodeID, l stats.Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[normKey(a, b)] = l
}

// LinkBetween returns the configured link or the default.
func (n *Network) LinkBetween(a, b NodeID) stats.Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if l, ok := n.links[normKey(a, b)]; ok {
		return l
	}
	return stats.DefaultLink
}

// SetRealLatency makes deliveries between distinct nodes sleep their
// accounted transfer time scaled by the given factor (1.0 = real time,
// 0.1 = 10× compressed, 0 = never sleep — the default). Deterministic
// experiments keep it off; wall-clock benchmarks turn it on so that the
// executor's overlap of independent remote scans shows up as elapsed-time
// savings rather than only as accounting.
func (n *Network) SetRealLatency(scale float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.realLatency = scale
}

// delay sleeps the scaled transfer time of a delivery when real latency
// is enabled. Self-deliveries are always free.
func (n *Network) delay(m Message, link stats.Link) {
	n.mu.RLock()
	scale := n.realLatency
	n.mu.RUnlock()
	if scale <= 0 || m.From == m.To {
		return
	}
	time.Sleep(time.Duration(link.TransferMS(m.Size()) * scale * float64(time.Millisecond)))
}

// Fail marks a node down: every message to it errors until Recover.
func (n *Network) Fail(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downed[id] = true
}

// Recover brings a failed node back.
func (n *Network) Recover(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downed, id)
}

// IsDown reports whether a node is failed.
func (n *Network) IsDown(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.downed[id]
}

// Partition cuts the link between two nodes; messages across it error.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[normKey(a, b)] = true
}

// Heal restores a cut link.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, normKey(a, b))
}

// lookup resolves the handler for a delivery, or an error describing why
// the message cannot be delivered.
func (n *Network) lookup(m Message) (Handler, stats.Link, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.downed[m.To] {
		return nil, stats.Link{}, fmt.Errorf("network: node %s is down", m.To)
	}
	if n.downed[m.From] {
		return nil, stats.Link{}, fmt.Errorf("network: node %s is down", m.From)
	}
	if n.cut[normKey(m.From, m.To)] {
		return nil, stats.Link{}, fmt.Errorf("network: link %s–%s is partitioned", m.From, m.To)
	}
	hs, ok := n.handlers[m.To]
	if !ok {
		return nil, stats.Link{}, fmt.Errorf("network: unknown node %s", m.To)
	}
	h, ok := hs[m.Kind]
	if !ok {
		return nil, stats.Link{}, fmt.Errorf("network: node %s has no handler for %q", m.To, m.Kind)
	}
	link, ok := n.links[normKey(m.From, m.To)]
	if !ok {
		link = stats.DefaultLink
	}
	if m.From == m.To {
		link = stats.Link{LatencyMS: 0, BandwidthKBps: 1 << 30}
	}
	return h, link, nil
}

func (n *Network) account(m Message, link stats.Link) {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	c := &n.counters
	c.Messages++
	c.Bytes += m.Size()
	if m.From != m.To {
		c.SimulatedMS += link.TransferMS(m.Size())
	}
	if c.PerKind == nil {
		c.PerKind = map[string]int{}
	}
	c.PerKind[m.Kind]++
	if c.PerNodeReceived == nil {
		c.PerNodeReceived = map[NodeID]int{}
	}
	c.PerNodeReceived[m.To]++
}

// Call delivers the message and returns the handler's reply, accounting
// both directions. Handler errors are returned to the caller.
func (n *Network) Call(from, to NodeID, kind string, payload []byte) ([]byte, error) {
	m := Message{From: from, To: to, Kind: kind, Payload: payload}
	h, link, err := n.lookup(m)
	if err != nil {
		return nil, err
	}
	n.account(m, link)
	n.delay(m, link)
	reply, err := h(m)
	if err != nil {
		return nil, fmt.Errorf("network: %s(%s→%s): %w", kind, from, to, err)
	}
	replyMsg := Message{From: to, To: from, Kind: kind + ".reply", Payload: reply}
	n.account(replyMsg, link)
	n.delay(replyMsg, link)
	return reply, nil
}

// Send delivers a one-way message, accounting one direction. The
// handler's reply payload is discarded.
func (n *Network) Send(from, to NodeID, kind string, payload []byte) error {
	m := Message{From: from, To: to, Kind: kind, Payload: payload}
	h, link, err := n.lookup(m)
	if err != nil {
		return err
	}
	n.account(m, link)
	n.delay(m, link)
	if _, err := h(m); err != nil {
		return fmt.Errorf("network: %s(%s→%s): %w", kind, from, to, err)
	}
	return nil
}

// Counters returns a snapshot of the traffic counters.
func (n *Network) Counters() Counters {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	snap := n.counters
	snap.PerKind = map[string]int{}
	for k, v := range n.counters.PerKind {
		snap.PerKind[k] = v
	}
	snap.PerNodeReceived = map[NodeID]int{}
	for k, v := range n.counters.PerNodeReceived {
		snap.PerNodeReceived[k] = v
	}
	return snap
}

// ResetCounters zeroes the traffic counters (between experiment runs).
func (n *Network) ResetCounters() {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	n.counters = Counters{}
}
