// Package network provides the simulated P2P transport SQPeer runs on in
// this reproduction: named nodes exchanging typed messages over links with
// configurable latency and bandwidth, with full message/byte accounting,
// node failures and link partitions. The paper's algorithms are
// network-agnostic; this substrate exposes exactly the costs the paper
// argues about (number of messages routed, bytes shipped, per-peer query
// load) while keeping experiments deterministic and laptop-fast: latency
// is accounted, not slept — unless SetRealLatency opts a network into
// sleeping a scaled-down version of each transfer, which wall-clock
// benchmarks use to make overlap between concurrent remote scans
// observable.
package network

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sqpeer/internal/pattern"
	"sqpeer/internal/stats"
)

// NodeID names a network node; it coincides with the peer id.
type NodeID = pattern.PeerID

// Message is one application message.
type Message struct {
	// From and To are the endpoints.
	From, To NodeID
	// Kind is the application message type (e.g. "query.route",
	// "chan.packet"); handlers are registered per kind.
	Kind string
	// Payload is the serialized body.
	Payload []byte
}

// Size returns the accounted wire size of the message.
func (m Message) Size() int { return len(m.Payload) + len(m.Kind) + 16 }

// Handler processes an incoming message and returns a reply payload (for
// Call) or nil (for one-way sends).
type Handler func(Message) ([]byte, error)

// Delivery failure reasons carried by DeliveryError.
const (
	// ReasonNodeDown: an endpoint is failed (crash; may restart).
	ReasonNodeDown = "node-down"
	// ReasonPartition: the link between the endpoints is cut.
	ReasonPartition = "partition"
	// ReasonDropped: the message was lost in transit (injected fault).
	ReasonDropped = "dropped"
	// ReasonDeadline: the delivery's simulated latency exceeded the
	// sender's deadline — how hung or gray-failed peers surface without
	// wedging the sender forever.
	ReasonDeadline = "deadline"
	// ReasonUnknownNode: the destination was never registered.
	ReasonUnknownNode = "unknown-node"
	// ReasonNoHandler: the destination has no handler for the kind.
	ReasonNoHandler = "no-handler"
	// ReasonOverload: the destination admitted too much work already and
	// shed this request (admission control). Transient by construction —
	// the rejection carries a retry-after hint on the logical clock.
	ReasonOverload = "overload"
)

// DeliveryError reports a failed delivery with a failure class, letting
// callers distinguish transient conditions (worth retrying: crashes that
// may heal, partitions, drops, deadline misses) from permanent ones
// (unknown node, missing handler).
type DeliveryError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// Transient reports whether retrying the delivery could succeed.
	Transient bool
	// Detail is the human-readable description.
	Detail string
}

// Error renders the failure.
func (e *DeliveryError) Error() string { return e.Detail }

// Transient reports whether err (or anything it wraps) is a transient
// delivery failure — the retry/backoff gate used by the executor.
func Transient(err error) bool {
	var de *DeliveryError
	return errors.As(err, &de) && de.Transient
}

// Fault is an injector's verdict on one delivery attempt.
type Fault struct {
	// Drop loses the message: the sender sees a transient DeliveryError.
	Drop bool
	// Duplicate delivers the message twice (at-least-once semantics);
	// the second delivery's reply and error are discarded.
	Duplicate bool
	// ExtraDelayMS is added to the delivery's simulated latency (delay
	// spike, gray-failed endpoint responding slowly).
	ExtraDelayMS float64
	// Reason optionally labels a drop (defaults to ReasonDropped).
	Reason string
}

// Injector intercepts deliveries for fault injection. Implementations
// must be safe for concurrent use; self-deliveries are never intercepted.
type Injector interface {
	Intercept(Message) Fault
}

// Counters aggregates traffic accounting; obtained via Network.Counters.
type Counters struct {
	// Messages is the total number of messages delivered (a Call counts
	// its request and its reply).
	Messages int
	// Bytes is the total accounted payload volume.
	Bytes int
	// SimulatedMS is the total accounted transfer time over link
	// latencies and bandwidths (as if messages were sequential).
	SimulatedMS float64
	// PerKind counts messages by kind.
	PerKind map[string]int
	// PerNodeReceived counts messages received per node — the per-peer
	// query-load metric of §2.2.
	PerNodeReceived map[NodeID]int
}

// Network is the in-process message fabric. It is safe for concurrent
// use; handlers run on the sender's goroutine (synchronous delivery), so
// handlers must not hold locks that senders also hold.
type Network struct {
	mu       sync.RWMutex
	handlers map[NodeID]map[string]Handler
	links    map[linkKey]stats.Link
	downed   map[NodeID]bool
	cut      map[linkKey]bool
	// realLatency > 0 makes every inter-node delivery sleep
	// link.TransferMS × realLatency milliseconds (see SetRealLatency).
	realLatency float64
	// injector, when set, is consulted on every inter-node delivery.
	injector Injector

	cmu      sync.Mutex
	counters Counters
}

type linkKey struct{ a, b NodeID }

func normKey(a, b NodeID) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a, b}
}

// New returns an empty network.
func New() *Network {
	return &Network{
		handlers: map[NodeID]map[string]Handler{},
		links:    map[linkKey]stats.Link{},
		downed:   map[NodeID]bool{},
		cut:      map[linkKey]bool{},
	}
}

// AddNode registers a node with no handlers yet. Adding an existing node
// is a no-op.
func (n *Network) AddNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[id]; !ok {
		n.handlers[id] = map[string]Handler{}
	}
}

// Handle registers the handler for a message kind at a node.
func (n *Network) Handle(id NodeID, kind string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[id]; !ok {
		n.handlers[id] = map[string]Handler{}
	}
	n.handlers[id][kind] = h
}

// RemoveNode unregisters a node entirely (it leaves the system).
func (n *Network) RemoveNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
	delete(n.downed, id)
}

// Nodes returns the registered node ids, sorted.
func (n *Network) Nodes() []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]NodeID, 0, len(n.handlers))
	for id := range n.handlers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLink configures the link between two nodes (symmetric).
func (n *Network) SetLink(a, b NodeID, l stats.Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[normKey(a, b)] = l
}

// LinkBetween returns the configured link or the default.
func (n *Network) LinkBetween(a, b NodeID) stats.Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if l, ok := n.links[normKey(a, b)]; ok {
		return l
	}
	return stats.DefaultLink
}

// SetRealLatency makes deliveries between distinct nodes sleep their
// accounted transfer time scaled by the given factor (1.0 = real time,
// 0.1 = 10× compressed, 0 = never sleep — the default). Deterministic
// experiments keep it off; wall-clock benchmarks turn it on so that the
// executor's overlap of independent remote scans shows up as elapsed-time
// savings rather than only as accounting.
func (n *Network) SetRealLatency(scale float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.realLatency = scale
}

// SetInjector installs (or, with nil, removes) the fault injector
// consulted on every inter-node delivery. See internal/faults for the
// seeded implementation.
func (n *Network) SetInjector(inj Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injector = inj
}

// delay sleeps the scaled simulated latency of a delivery when real
// latency is enabled. Self-deliveries are always free.
func (n *Network) delay(m Message, latencyMS float64) {
	n.mu.RLock()
	scale := n.realLatency
	n.mu.RUnlock()
	if scale <= 0 || m.From == m.To {
		return
	}
	//lint:allow walltime the SetRealLatency shim exists to sleep scaled simulated latency for wall-clock benches
	time.Sleep(time.Duration(latencyMS * scale * float64(time.Millisecond)))
}

// Fail marks a node down: every message to it errors until Recover.
func (n *Network) Fail(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downed[id] = true
}

// Recover brings a failed node back.
func (n *Network) Recover(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downed, id)
}

// IsDown reports whether a node is failed.
func (n *Network) IsDown(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.downed[id]
}

// Partition cuts the link between two nodes; messages across it error.
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[normKey(a, b)] = true
}

// Heal restores a cut link.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, normKey(a, b))
}

// lookup resolves the handler for a delivery, or an error describing why
// the message cannot be delivered.
func (n *Network) lookup(m Message) (Handler, stats.Link, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.downed[m.To] {
		return nil, stats.Link{}, &DeliveryError{Reason: ReasonNodeDown, Transient: true,
			Detail: fmt.Sprintf("network: node %s is down", m.To)}
	}
	if n.downed[m.From] {
		return nil, stats.Link{}, &DeliveryError{Reason: ReasonNodeDown, Transient: true,
			Detail: fmt.Sprintf("network: node %s is down", m.From)}
	}
	if n.cut[normKey(m.From, m.To)] {
		return nil, stats.Link{}, &DeliveryError{Reason: ReasonPartition, Transient: true,
			Detail: fmt.Sprintf("network: link %s–%s is partitioned", m.From, m.To)}
	}
	hs, ok := n.handlers[m.To]
	if !ok {
		return nil, stats.Link{}, &DeliveryError{Reason: ReasonUnknownNode,
			Detail: fmt.Sprintf("network: unknown node %s", m.To)}
	}
	h, ok := hs[m.Kind]
	if !ok {
		return nil, stats.Link{}, &DeliveryError{Reason: ReasonNoHandler,
			Detail: fmt.Sprintf("network: node %s has no handler for %q", m.To, m.Kind)}
	}
	link, ok := n.links[normKey(m.From, m.To)]
	if !ok {
		link = stats.DefaultLink
	}
	if m.From == m.To {
		link = stats.Link{LatencyMS: 0, BandwidthKBps: 1 << 30}
	}
	return h, link, nil
}

func (n *Network) account(m Message, latencyMS float64) {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	c := &n.counters
	c.Messages++
	c.Bytes += m.Size()
	c.SimulatedMS += latencyMS
	if c.PerKind == nil {
		c.PerKind = map[string]int{}
	}
	c.PerKind[m.Kind]++
	if c.PerNodeReceived == nil {
		c.PerNodeReceived = map[NodeID]int{}
	}
	c.PerNodeReceived[m.To]++
}

// deliver is the one-leg delivery core shared by Send and Call: resolve
// the route, consult the injector, enforce the sender's deadline against
// the simulated latency, account, optionally sleep, and invoke the
// handler (twice under a duplication fault). It returns the handler's
// reply.
func (n *Network) deliver(m Message, deadlineMS float64) ([]byte, error) {
	h, link, err := n.lookup(m)
	if err != nil {
		return nil, err
	}
	var f Fault
	if m.From != m.To {
		n.mu.RLock()
		inj := n.injector
		n.mu.RUnlock()
		if inj != nil {
			f = inj.Intercept(m)
		}
	}
	latency := 0.0
	if m.From != m.To {
		latency = link.TransferMS(m.Size()) + f.ExtraDelayMS
	}
	if deadlineMS > 0 && latency > deadlineMS {
		// The sender waited out its deadline on the simulated clock; the
		// message is considered lost to it even if it would eventually
		// arrive. The handler is not invoked.
		n.account(m, deadlineMS)
		return nil, &DeliveryError{Reason: ReasonDeadline, Transient: true,
			Detail: fmt.Sprintf("network: %s(%s→%s) exceeded deadline (%.1fms > %.1fms)",
				m.Kind, m.From, m.To, latency, deadlineMS)}
	}
	if f.Drop {
		// The message went out and vanished; the wire time is spent.
		n.account(m, latency)
		reason := f.Reason
		if reason == "" {
			reason = ReasonDropped
		}
		return nil, &DeliveryError{Reason: reason, Transient: true,
			Detail: fmt.Sprintf("network: %s(%s→%s) lost in transit (%s)", m.Kind, m.From, m.To, reason)}
	}
	n.account(m, latency)
	n.delay(m, latency)
	reply, err := h(m)
	if err != nil {
		return nil, fmt.Errorf("network: %s(%s→%s): %w", m.Kind, m.From, m.To, err)
	}
	if f.Duplicate {
		// At-least-once delivery: the handler runs again on the same
		// message; the duplicate's reply and error are discarded.
		n.account(m, latency)
		_, _ = h(m)
	}
	return reply, nil
}

// Call delivers the message and returns the handler's reply, accounting
// both directions. Handler errors are returned to the caller.
func (n *Network) Call(from, to NodeID, kind string, payload []byte) ([]byte, error) {
	return n.CallWithin(from, to, kind, payload, 0)
}

// CallWithin is Call with a per-leg deadline on the simulated clock
// (0 = none): a leg whose simulated latency exceeds the deadline fails
// with a transient DeliveryError instead of delivering.
func (n *Network) CallWithin(from, to NodeID, kind string, payload []byte, deadlineMS float64) ([]byte, error) {
	reply, err := n.deliver(Message{From: from, To: to, Kind: kind, Payload: payload}, deadlineMS)
	if err != nil {
		return nil, err
	}
	if err := n.replyLeg(Message{From: to, To: from, Kind: kind + ".reply", Payload: reply}, deadlineMS); err != nil {
		return nil, err
	}
	return reply, nil
}

// replyLeg accounts (and possibly faults) the reply half of a Call. No
// handler runs — the caller already holds the reply — but the wire time
// is spent, the injector may lose or delay it, and the caller's deadline
// applies.
func (n *Network) replyLeg(m Message, deadlineMS float64) error {
	if m.From == m.To {
		n.account(m, 0)
		return nil
	}
	n.mu.RLock()
	inj := n.injector
	link, ok := n.links[normKey(m.From, m.To)]
	n.mu.RUnlock()
	if !ok {
		link = stats.DefaultLink
	}
	var f Fault
	if inj != nil {
		f = inj.Intercept(m)
	}
	latency := link.TransferMS(m.Size()) + f.ExtraDelayMS
	if deadlineMS > 0 && latency > deadlineMS {
		n.account(m, deadlineMS)
		return &DeliveryError{Reason: ReasonDeadline, Transient: true,
			Detail: fmt.Sprintf("network: %s(%s→%s) exceeded deadline (%.1fms > %.1fms)",
				m.Kind, m.From, m.To, latency, deadlineMS)}
	}
	n.account(m, latency)
	if f.Drop {
		reason := f.Reason
		if reason == "" {
			reason = ReasonDropped
		}
		return &DeliveryError{Reason: reason, Transient: true,
			Detail: fmt.Sprintf("network: %s(%s→%s) lost in transit (%s)", m.Kind, m.From, m.To, reason)}
	}
	n.delay(m, latency)
	return nil
}

// Send delivers a one-way message, accounting one direction. The
// handler's reply payload is discarded.
func (n *Network) Send(from, to NodeID, kind string, payload []byte) error {
	return n.SendWithin(from, to, kind, payload, 0)
}

// SendWithin is Send with a deadline on the simulated clock (0 = none).
func (n *Network) SendWithin(from, to NodeID, kind string, payload []byte, deadlineMS float64) error {
	_, err := n.deliver(Message{From: from, To: to, Kind: kind, Payload: payload}, deadlineMS)
	return err
}

// Counters returns a snapshot of the traffic counters.
func (n *Network) Counters() Counters {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	snap := n.counters
	snap.PerKind = map[string]int{}
	for k, v := range n.counters.PerKind {
		snap.PerKind[k] = v
	}
	snap.PerNodeReceived = map[NodeID]int{}
	for k, v := range n.counters.PerNodeReceived {
		snap.PerNodeReceived[k] = v
	}
	return snap
}

// NowMS returns the logical clock reading: total simulated transfer
// time accounted so far. Admission token buckets refill against this
// clock so overload experiments stay deterministic — no wall time.
func (n *Network) NowMS() float64 {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	return n.counters.SimulatedMS
}

// AdvanceMS advances the logical clock by ms without sending traffic:
// client think time between requests. Harnesses use it to pace offered
// load against lease-based admission controllers, whose slots expire on
// this clock, so an experiment's overload factor is set by explicit
// deterministic steps rather than by how much transfer latency its
// queries happen to accumulate.
func (n *Network) AdvanceMS(ms float64) {
	if ms <= 0 {
		return
	}
	n.cmu.Lock()
	defer n.cmu.Unlock()
	n.counters.SimulatedMS += ms
}

// ResetCounters zeroes the traffic counters (between experiment runs).
func (n *Network) ResetCounters() {
	n.cmu.Lock()
	defer n.cmu.Unlock()
	n.counters = Counters{}
}
