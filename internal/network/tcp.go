package network

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// The in-process Network is the substrate every experiment runs on, but a
// deployment can expose any node over a real socket: a Gateway serves one
// node's message handlers over TCP with a length-prefixed JSON framing,
// and a Client lets an out-of-process party call them. Traffic entering
// through a gateway is accounted on the Network like any other message.

// frame is the wire request: one message addressed to the gateway's node.
type frame struct {
	From    NodeID `json:"from"`
	Kind    string `json:"kind"`
	Payload []byte `json:"payload"`
}

// frameReply is the wire response.
type frameReply struct {
	Payload []byte `json:"payload,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Gateway serves one node's handlers over TCP.
type Gateway struct {
	node NodeID
	net  *Network
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ServeTCP starts a gateway for the node on addr (use "127.0.0.1:0" for
// an ephemeral port; Addr reports the bound address). The gateway serves
// until Close.
func ServeTCP(n *Network, node NodeID, addr string) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: gateway for %s: %w", node, err)
	}
	g := &Gateway{node: node, net: n, ln: ln, conns: map[net.Conn]struct{}{}}
	g.wg.Add(1)
	go g.acceptLoop()
	return g, nil
}

// Addr returns the gateway's bound address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Close stops accepting and tears down live connections.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		//lint:allow maporder teardown closes every live conn; close order carries no data
		conns = append(conns, c)
	}
	g.mu.Unlock()
	err := g.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.wg.Add(1)
		go g.serveConn(conn)
	}
}

func (g *Gateway) serveConn(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req frame
		if err := readFrame(r, &req); err != nil {
			return // EOF or broken peer
		}
		var reply frameReply
		payload, err := g.net.Call(req.From, g.node, req.Kind, req.Payload)
		if err != nil {
			reply.Err = err.Error()
		} else {
			reply.Payload = payload
		}
		if err := writeFrame(w, reply); err != nil {
			return
		}
	}
}

// Client is a TCP connection to a remote node's gateway. It is safe for
// sequential use; guard with a mutex (as Call does) for concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialTCP connects to a gateway.
func DialTCP(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial gateway %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call sends one message to the gateway's node and returns the handler's
// reply.
func (c *Client) Call(from NodeID, kind string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, frame{From: from, Kind: kind, Payload: payload}); err != nil {
		return nil, fmt.Errorf("network: send frame: %w", err)
	}
	var reply frameReply
	if err := readFrame(c.r, &reply); err != nil {
		return nil, fmt.Errorf("network: read reply: %w", err)
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("network: remote: %s", reply.Err)
	}
	return reply.Payload, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// maxFrameSize bounds a single frame (16 MiB) to stop a corrupt length
// prefix from allocating unbounded memory.
const maxFrameSize = 16 << 20

func writeFrame(w *bufio.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
