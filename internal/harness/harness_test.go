package harness_test

import (
	"strings"
	"testing"

	"sqpeer/internal/harness"
)

func TestIDsAreStable(t *testing.T) {
	ids := harness.IDs()
	want := []string{"adapt", "adv", "batch", "churn", "dht", "dist", "fault", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "med", "member", "observe", "overload", "recover", "son", "sub", "topn", "trace"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := harness.Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestEveryExperimentReproduces runs each experiment individually so a
// failure names the exact experiment (the root integration test runs the
// whole suite in one shot).
func TestEveryExperimentReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("harness experiments skipped in -short mode")
	}
	for _, id := range harness.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := harness.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Pass {
				t.Errorf("experiment %s mismatched:\n%s", id, r)
			}
			out := r.String()
			if !strings.Contains(out, strings.ToUpper(id)) {
				t.Errorf("report does not name itself: %s", out)
			}
			if r.Pass && !strings.Contains(out, "REPRODUCED") {
				t.Errorf("passing report not marked REPRODUCED: %s", out)
			}
		})
	}
}

func TestReportRendering(t *testing.T) {
	r, err := harness.Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"=== FIG1", "[OK ]", "--- FIG1: REPRODUCED"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
