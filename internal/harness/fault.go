package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

func init() {
	register("fault", "CLAIM-FAULT: fault-injection sweep — deadlines, retry, quarantine, partial answers (§2.5)", claimFault)
}

// faultSweep is the machine-readable artifact (BENCH_PR2.json).
type faultSweep struct {
	Seed           int64        `json:"seed"`
	RoundsPerPoint int          `json:"roundsPerPoint"`
	Points         []faultPoint `json:"points"`
}

type faultPoint struct {
	// Rate is the per-delivery probability for drop, duplicate and delay
	// spike, and the per-round probability for crash, gray failure and
	// link flap.
	Rate            float64 `json:"faultRate"`
	Queries         int     `json:"queries"`
	Full            int     `json:"full"`
	Partial         int     `json:"partial"`
	Failed          int     `json:"failed"`
	SuccessRate     float64 `json:"successRate"`
	PartialFraction float64 `json:"partialFraction"`
	Retries         int     `json:"retries"`
	Replans         int     `json:"replans"`
	Migrations      int     `json:"migrations"`
	BackoffMS       float64 `json:"backoffMs"`
	AvgLatencyMS    float64 `json:"avgLatencyMs"`
	AddedLatencyMS  float64 `json:"addedLatencyMs"`
	Digest          string  `json:"digest"`
	Deterministic   bool    `json:"deterministic"`
}

// faultPointRun is one seeded pass over a sweep point.
type faultPointRun struct {
	full, partial, failed        int
	retries, replans, migrations int
	refetched, retained          int
	backoffMS                    float64
	simMS                        float64
	injected                     int
	events                       int
	digest                       uint64
}

// claimFault sweeps a fault-intensity axis over the Figure-2/3 fixture.
// A hardened client peer P0 (deadlines, bounded retry, quarantine,
// partial answers) queries the paper peers P1..P4 while a seeded
// injector drops/duplicates/delays deliveries and a seeded schedule
// crashes, gray-fails and flaps them. The claim under test: the
// failure-domain hardening degrades gracefully — at a 10% fault rate at
// least 95% of queries still complete (fully or explicitly partially),
// and every same-seed rerun is byte-identical.
func claimFault() *Report {
	r := &Report{ID: "fault", Title: "CLAIM-FAULT: fault-injection sweep — deadlines, retry, quarantine, partial answers (§2.5)", Pass: true}
	const (
		seed   = 20240805
		rounds = 30
	)
	rates := []float64{0, 0.1, 0.2, 0.3}

	sweep := faultSweep{Seed: seed, RoundsPerPoint: rounds}
	var baselinePerQuery float64
	allDeterministic, anyInjected := true, false
	r.linef("  %-6s %8s %6s %8s %7s %8s %8s %6s %9s %12s", "rate", "complete", "full", "partial", "failed", "retries", "replans", "migr", "backoff", "added-lat/q")
	for _, rate := range rates {
		run := runFaultPoint(seed, rounds, rate, 0)
		rerun := runFaultPoint(seed, rounds, rate, 0)
		deterministic := run.digest == rerun.digest
		allDeterministic = allDeterministic && deterministic
		if run.injected > 0 || run.events > 0 {
			anyInjected = true
		}

		perQuery := run.simMS / float64(rounds)
		if rate == 0 {
			baselinePerQuery = perQuery
		}
		pt := faultPoint{
			Rate:            rate,
			Queries:         rounds,
			Full:            run.full,
			Partial:         run.partial,
			Failed:          run.failed,
			SuccessRate:     float64(run.full+run.partial) / float64(rounds),
			PartialFraction: float64(run.partial) / float64(rounds),
			Retries:         run.retries,
			Replans:         run.replans,
			Migrations:      run.migrations,
			BackoffMS:       run.backoffMS,
			AvgLatencyMS:    perQuery,
			AddedLatencyMS:  perQuery - baselinePerQuery,
			Digest:          fmt.Sprintf("%016x", run.digest),
			Deterministic:   deterministic,
		}
		sweep.Points = append(sweep.Points, pt)
		r.linef("  %-6.2f %7.0f%% %6d %8d %7d %8d %8d %6d %8.0fms %10.1fms",
			rate, pt.SuccessRate*100, pt.Full, pt.Partial, pt.Failed,
			pt.Retries, pt.Replans, pt.Migrations, pt.BackoffMS, pt.AddedLatencyMS)
	}

	p0 := sweep.Points[0]
	p10 := sweep.Points[1]
	r.check("fault-free baseline: every query fully complete, no retries, replans or migrations",
		p0.Full == rounds && p0.Retries == 0 && p0.Replans == 0 && p0.Migrations == 0)
	r.check("≥95% of queries complete (full or partial) at 10% fault rate",
		p10.SuccessRate >= 0.95)
	r.check("hardening machinery exercised under faults (retries, replans or migrations > 0)",
		p10.Retries+p10.Replans+p10.Migrations > 0)
	r.check("faults actually injected at nonzero rates", anyInjected)
	r.check("same-seed reruns byte-identical at every fault rate", allDeterministic)

	if blob, err := json.MarshalIndent(sweep, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR2.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR2.json", false)
	}
	return r
}

// runFaultPoint executes one seeded pass: fresh system, fresh injector
// and schedule, `rounds` queries, everything deterministic. The digest
// folds in each round's outcome and row set, so two same-seed passes
// agreeing on the digest means byte-identical answers. maxMigrations
// selects the recovery mode (0 = engine default, exec.NoMigrations =
// legacy full-restart ablation).
func runFaultPoint(seed int64, rounds int, rate float64, maxMigrations int) faultPointRun {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(2)
	net := network.New()
	ids := []pattern.PeerID{"P1", "P2", "P3", "P4"}
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range ids {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema,
			Base: bases[id], Parallelism: 1}, net)
		if err != nil {
			panic(err)
		}
		peers[id] = p
	}
	// P0 is the hardened client root: empty base, per-dispatch deadlines,
	// bounded retry with backoff, quarantine-based health tracking and
	// opt-in partial answers. It is never faulted (schedule root).
	p0, err := peer.New(peer.Config{ID: "P0", Kind: peer.ClientPeer, Schema: schema,
		Parallelism: 1, DeadlineMS: 200, MaxRetries: 3,
		AllowPartial: true, Quarantine: true, MaxMigrations: maxMigrations}, net)
	if err != nil {
		panic(err)
	}
	for _, id := range ids {
		p0.Learn(peers[id].Advertisement())
	}
	net.ResetCounters()

	inj := faults.NewInjector(seed, faults.Rates{
		Drop: 1, Duplicate: 1, DelaySpike: 1, SpikeMS: 300,
	}.Scaled(rate))
	net.SetInjector(inj)
	sched := faults.NewSchedule(seed, "P0", ids, rounds, faults.ScheduleRates{
		Crash: rate, CrashLen: 1,
		Gray: rate, GrayLen: 1, GrayDelayMS: 1000,
		Flap: rate,
	})

	h := fnv.New64a()
	out := faultPointRun{events: len(sched.Events)}
	for round := 0; round < rounds; round++ {
		eff := sched.Apply(round, net, inj)
		for _, id := range eff.Restarted {
			// A restarting peer re-announces itself; the quarantine (if
			// any) lifts via the health tracker's cool-down, not here.
			p0.Learn(peers[id].Advertisement())
		}
		p0.Health.Tick()

		latBefore := net.Counters().SimulatedMS
		backoffBefore := p0.Engine.Metrics().BackoffMS
		res, err := p0.AskAnnotated(gen.PaperRQL)
		m := p0.Engine.Metrics()
		out.simMS += net.Counters().SimulatedMS - latBefore + (m.BackoffMS - backoffBefore)
		switch {
		case err != nil:
			out.failed++
			fmt.Fprintf(h, "%d:error\n", round)
		case res.Completeness.Complete:
			out.full++
			fmt.Fprintf(h, "%d:full:%v\n", round, res.Rows.Sorted())
		default:
			out.partial++
			var unanswered []string
			for _, u := range res.Completeness.Unanswered {
				unanswered = append(unanswered, u.PatternID)
			}
			fmt.Fprintf(h, "%d:partial:%v:%v\n", round, unanswered, res.Rows.Sorted())
		}
	}
	m := p0.Engine.Metrics()
	out.retries, out.replans, out.backoffMS = m.Retries, m.Replans, m.BackoffMS
	out.migrations = m.Migrations
	out.refetched, out.retained = m.RowsRefetched, m.RowsRetained
	st := inj.Stats()
	out.injected = st.Dropped + st.Duplicated + st.Delayed + st.Grayed
	out.digest = h.Sum64()
	return out
}
