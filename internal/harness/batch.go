package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/peer"
	"sqpeer/internal/rql"
)

func init() {
	register("batch", "CLAIM-BATCH: columnar batch plane vs RowWire ablation — throughput, allocs/row, wire bytes (§12)", claimBatch)
}

// batchSweep is the machine-readable artifact (BENCH_PR6.json). When
// Smoke is set the sweep ran at reduced scale (inside go test, where
// wall-clock margins are meaningless — especially under -race) and only
// the correctness checks apply; headline numbers come from
// `sqpeer-bench -exp batch`.
type batchSweep struct {
	Providers int          `json:"providers"`
	Props     int          `json:"props"`
	Smoke     bool         `json:"smoke,omitempty"`
	Points    []batchPoint `json:"points"`
}

// batchModeStats is one data-plane mode's cost at one sweep point.
type batchModeStats struct {
	Seconds      float64 `json:"seconds"`
	RowsPerSec   float64 `json:"rowsPerSec"`
	AllocsPerRow float64 `json:"allocsPerRow"`
	BytesPerRow  float64 `json:"bytesPerRow"`
	PayloadBytes int     `json:"payloadBytes"`
}

type batchPoint struct {
	Chains      int            `json:"chains"`
	RowsShipped int            `json:"rowsShipped"`
	AnswerRows  int            `json:"answerRows"`
	Batch       batchModeStats `json:"batch"`
	RowWire     batchModeStats `json:"rowWire"`
	Speedup     float64        `json:"speedup"`
	AllocRatio  float64        `json:"allocRatio"`
	DigestEqual bool           `json:"digestEqual"`
	Digest      string         `json:"digest"`
}

// profileExecHook, when set (by the profiling test hook), brackets the
// measured Execute call: called with false before, true after.
var profileExecHook func(stop bool)

// batchRun is one measured execution over a fresh system.
type batchRun struct {
	secs         float64
	rowsShipped  int
	answerRows   int
	allocsPerRow float64
	bytesPerRow  float64
	payloadBytes int
	digest       uint64
}

// claimBatch measures the columnar batch data plane against the RowWire
// ablation (per-row JSON packets) on a multi-peer scan/join workload: a
// client P0 joins two property scans, each horizontally sliced across
// four provider peers, so every shipped row crosses the simulated wire
// once. The claim under test: on the ≥1M-row headline point the batch
// plane is ≥5× faster end to end and allocates ≥10× fewer heap objects
// per shipped row, with byte-identical answers to the row-at-a-time
// path at every point.
func claimBatch() *Report {
	r := &Report{ID: "batch", Title: "CLAIM-BATCH: columnar batch plane vs RowWire ablation — throughput, allocs/row, wire bytes (§12)", Pass: true}
	const (
		providers = 4
		props     = 2
	)
	// Two data-plane modes per point; inside a test binary the sweep
	// shrinks: experiment results stay assertable, wall-clock margins do
	// not (the race detector alone skews them >10×).
	chainSweep := []int{50_000, 200_000, 500_000}
	smoke := testing.Testing()
	if smoke {
		chainSweep = []int{1_000, 2_000, 5_000}
	}

	sweep := batchSweep{Providers: providers, Props: props, Smoke: smoke}
	allDigestsEqual, allFewerBytes := true, true
	r.linef("  p1⋈p2 over %d providers, horizontal slices; both modes per point:", providers)
	r.linef("  %8s %9s | %8s %11s %9s | %8s %11s %9s | %7s %7s", "chains", "shipped",
		"batch-s", "rows/s", "allocs/r", "json-s", "rows/s", "allocs/r", "speedup", "alloc×")
	for _, chains := range chainSweep {
		bt := runBatchPoint(chains, providers, props, false)
		rw := runBatchPoint(chains, providers, props, true)
		pt := batchPoint{
			Chains:      chains,
			RowsShipped: bt.rowsShipped,
			AnswerRows:  bt.answerRows,
			Batch:       bt.modeStats(),
			RowWire:     rw.modeStats(),
			Speedup:     rw.secs / bt.secs,
			AllocRatio:  rw.allocsPerRow / bt.allocsPerRow,
			DigestEqual: bt.digest == rw.digest && bt.rowsShipped == rw.rowsShipped,
			Digest:      fmt.Sprintf("%016x", bt.digest),
		}
		sweep.Points = append(sweep.Points, pt)
		allDigestsEqual = allDigestsEqual && pt.DigestEqual
		allFewerBytes = allFewerBytes && bt.payloadBytes < rw.payloadBytes
		r.linef("  %8d %9d | %8.2f %11.0f %9.1f | %8.2f %11.0f %9.1f | %6.1f× %6.1f×",
			chains, pt.RowsShipped,
			pt.Batch.Seconds, pt.Batch.RowsPerSec, pt.Batch.AllocsPerRow,
			pt.RowWire.Seconds, pt.RowWire.RowsPerSec, pt.RowWire.AllocsPerRow,
			pt.Speedup, pt.AllocRatio)
		// Feed the registry the same way the Fig benches do, so the
		// allocation trajectory is queryable alongside throughput.
		usPerRow := pt.Batch.Seconds * 1e6 / float64(max(1, pt.RowsShipped))
		benchObserve(fmt.Sprintf("batch.chains%d", chains), usPerRow)
		ObserveBenchAlloc(fmt.Sprintf("batch.chains%d", chains),
			pt.Batch.AllocsPerRow, pt.Batch.BytesPerRow)
	}

	// Determinism: a same-seed rerun of the smallest point must land on
	// the same digest (the workload and engine have no hidden state).
	rerun := runBatchPoint(chainSweep[0], providers, props, false)
	deterministic := fmt.Sprintf("%016x", rerun.digest) == sweep.Points[0].Digest
	r.check("batch and RowWire answers byte-identical at every point", allDigestsEqual)
	r.check("same-seed batch rerun reproduces the digest", deterministic)
	r.check("binary frames move fewer payload bytes than JSON at every point", allFewerBytes)
	if smoke {
		r.linef("  (reduced smoke sweep inside go test; run `sqpeer-bench -exp batch` for headline sizes)")
	} else {
		head := sweep.Points[len(sweep.Points)-1]
		r.check("headline point ships ≥1M rows across the wire", head.RowsShipped >= 1_000_000)
		r.check("≥5× rows/sec over the RowWire ablation at the headline point", head.Speedup >= 5)
		r.check("≥10× fewer allocs per shipped row at the headline point", head.AllocRatio >= 10)
	}

	if blob, err := json.MarshalIndent(sweep, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR6.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR6.json", false)
	}
	return r
}

// modeStats converts a run into its artifact form.
func (b batchRun) modeStats() batchModeStats {
	rps := 0.0
	if b.secs > 0 {
		rps = float64(b.rowsShipped) / b.secs
	}
	return batchModeStats{
		Seconds:      b.secs,
		RowsPerSec:   rps,
		AllocsPerRow: b.allocsPerRow,
		BytesPerRow:  b.bytesPerRow,
		PayloadBytes: b.payloadBytes,
	}
}

// runBatchPoint builds a fresh system — `providers` simple peers each
// holding a horizontal slice of `chains` instance chains, plus a client
// root P0 with no base so every result row is shipped — and executes the
// unoptimized chain query (unions and join at the root, no join
// push-down) once, measuring wall time and allocator cost around the
// Execute call only. Parallelism 1 keeps dispatch order, and therefore
// the digest, deterministic.
func runBatchPoint(chains, providers, props int, rowWire bool) batchRun {
	syn := gen.NewSynthetic(props, false)
	bases := syn.Bases(providers, chains, gen.Horizontal)
	net := network.New()
	var nodes []*peer.Peer
	for id, base := range bases {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: syn.Schema,
			Base: base, Parallelism: 1}, net)
		if err != nil {
			panic(err)
		}
		p.Engine.RowWire = rowWire
		// Both modes stream with the same analytic frame size: the
		// 256-row default is tuned for interactive first-row latency and
		// would charge each plane thousands of packet envelopes at the
		// headline point, measuring the envelope codec instead of the
		// data planes under comparison. 1024 keeps frame payloads under
		// the allocator's 32KB large-object threshold on both planes.
		p.Engine.BatchSize = 1024
		nodes = append(nodes, p)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	p0, err := peer.New(peer.Config{ID: "P0", Kind: peer.ClientPeer, Schema: syn.Schema,
		Parallelism: 1}, net)
	if err != nil {
		panic(err)
	}
	p0.Engine.RowWire = rowWire
	p0.Engine.BatchSize = 1024
	for _, p := range nodes {
		p0.Learn(p.Advertisement())
	}
	pr, err := p0.PlanQuery(syn.Query(1, props))
	if err != nil {
		panic(err)
	}

	runtime.GC()
	before := obs.ReadAllocs()
	if profileExecHook != nil {
		profileExecHook(false)
	}
	clock := StartClock()
	rows, execErr := p0.Engine.Execute(pr.Raw)
	secs := clock.Seconds()
	if profileExecHook != nil {
		profileExecHook(true)
	}
	delta := obs.ReadAllocs().Delta(before)
	if execErr != nil {
		panic(execErr)
	}

	m := p0.Engine.Metrics()
	out := batchRun{secs: secs, rowsShipped: m.RowsShipped, answerRows: rows.Len()}
	out.allocsPerRow, out.bytesPerRow = delta.PerOp(m.RowsShipped)
	for _, p := range nodes {
		out.payloadBytes += p.Channels.Stats().PayloadBytesSent
	}
	out.digest = rowDigest(rows)
	return out
}

// rowDigest folds the rendered, sorted answer rows into one fnv64a
// value: two modes agreeing on it means byte-identical answers.
func rowDigest(rows *rql.ResultSet) uint64 {
	h := fnv.New64a()
	for _, line := range rows.Sorted() {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
