package harness

import (
	"fmt"
	"sort"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
)

func init() {
	register("son", "SON routing vs Gnutella-style flooding (claim §1/§2.2)", claimSON)
	register("sub", "subsumption-aware vs exact-match routing (claim §2.3)", claimSubsumption)
	register("adapt", "run-time adaptation to peer departure (claim §2.5)", claimAdapt)
	register("dist", "vertical/horizontal/mixed data distribution (claim §2.4)", claimDistribution)
	register("adv", "active-schema vs whole-schema advertisements (claim §2.2)", claimAdvertisements)
	register("topn", "peer-count constraints: completeness vs load (future work §5)", claimTopN)
}

// claimSON compares a hybrid SON against flooding on the same peer
// population: messages per query, per-peer query load, and answers found.
func claimSON() *Report {
	r := &Report{ID: "son", Title: "SON routing vs Gnutella-style flooding (claim §1/§2.2)", Pass: true}
	r.linef("  %6s %9s | %12s %12s %8s | %12s %12s %8s",
		"peers", "relevant", "SON msgs", "SON touched", "rows", "flood msgs", "flood touched", "rows")

	for _, n := range []int{20, 50, 100} {
		sonMsgs, sonTouched, sonRows := sonRun(n)
		flMsgs, flTouched, flRows := floodRun(n)
		r.linef("  %6d %9s | %12d %12d %8d | %12d %12d %8d",
			n, "20%", sonMsgs, sonTouched, sonRows, flMsgs, flTouched, flRows)
		r.check(fmt.Sprintf("n=%d: SON touches fewer peers than flooding", n), sonTouched < flTouched)
		r.check(fmt.Sprintf("n=%d: SON finds at least as many answers", n), sonRows >= flRows)
	}
	return r
}

// sonRun builds a hybrid SON of n peers (20% relevant) and returns
// (messages, peers touched, answer rows) for one Figure-1 query.
func sonRun(n int) (msgs, touched, rows int) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	if _, err := h.AddSuperPeer("SP1"); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		id := pattern.PeerID(fmt.Sprintf("N%03d", i))
		if _, err := h.AddSimplePeer(id, claimBase(i, string(id)), "SP1"); err != nil {
			panic(err)
		}
	}
	net.ResetCounters()
	rs, err := h.Query("N000", gen.PaperRQL)
	if err != nil {
		panic(err)
	}
	c := net.Counters()
	for id, got := range c.PerNodeReceived {
		if got > 0 && id != "SP1" && id != "N000" {
			touched++
		}
	}
	return c.Messages, touched, rs.Len()
}

// floodRun builds a flooding network of n peers on a ring topology with
// chords and returns the same metrics.
func floodRun(n int) (msgs, touched, rows int) {
	net := network.New()
	f := overlay.NewFlooding(net, gen.PaperSchema())
	for i := 0; i < n; i++ {
		id := pattern.PeerID(fmt.Sprintf("N%03d", i))
		var nbrs []pattern.PeerID
		if i > 0 {
			nbrs = append(nbrs, pattern.PeerID(fmt.Sprintf("N%03d", i-1)))
		}
		if i >= 10 {
			nbrs = append(nbrs, pattern.PeerID(fmt.Sprintf("N%03d", i-10)))
		}
		if _, err := f.AddPeer(id, claimBase(i, string(id)), nbrs...); err != nil {
			panic(err)
		}
	}
	net.ResetCounters()
	res, err := f.Query("N000", gen.PaperRQL, n)
	if err != nil {
		panic(err)
	}
	c := net.Counters()
	for id, got := range c.PerNodeReceived {
		if got > 0 && id != "N000" {
			touched++
		}
	}
	return c.Messages, touched, res.Rows.Len()
}

// claimBase gives peer i its data role: 20% of peers are relevant (10%
// hold prop1+prop2 co-located so flooding can find something too, 10%
// split across prop1/prop2), the rest hold irrelevant prop3.
func claimBase(i int, name string) *rdf.Base {
	switch i % 10 {
	case 1:
		return roleBase(name, 2, "prop1", "prop2")
	case 2:
		if i%20 == 2 {
			return roleBase(name, 2, "prop1")
		}
		return roleBase(name, 2, "prop2")
	default:
		return roleBase(name, 2, "prop3")
	}
}

// claimSubsumption ablates RDF/S subsumption in routing and measures peer
// recall and answer completeness.
func claimSubsumption() *Report {
	r := &Report{ID: "sub", Title: "subsumption-aware vs exact-match routing (claim §2.3)", Pass: true}
	peers, _ := paperSystem(4)
	p1 := peers["P1"]

	for _, mode := range []pattern.SubsumptionMode{pattern.FullSubsumption, pattern.ExactOnly} {
		p1.Router.Mode = mode
		ann := p1.Router.Route(gen.PaperQuery())
		pl, err := plan.Generate(ann)
		if err != nil {
			r.check("plan generation", false)
			return r
		}
		rows, err := p1.Engine.Execute(pl)
		if err != nil {
			r.check("execution", false)
			return r
		}
		r.linef("  %-18s peers(Q1)=%v rows=%d", mode, ann.PeersFor("Q1"), rows.Len())
		if mode == pattern.FullSubsumption {
			r.check("full subsumption recalls P4 for Q1",
				fmt.Sprint(ann.PeersFor("Q1")) == "[P1 P2 P4]")
			r.check("full subsumption finds all 12 answers", rows.Len() == 12)
		} else {
			r.check("exact-only misses P4 for Q1",
				fmt.Sprint(ann.PeersFor("Q1")) == "[P1 P2]")
			r.check("exact-only loses the prop4 answers (8 < 12)", rows.Len() == 8)
		}
	}
	p1.Router.Mode = pattern.FullSubsumption
	return r
}

// claimAdapt kills peers mid-query and measures recovery.
func claimAdapt() *Report {
	r := &Report{ID: "adapt", Title: "run-time adaptation to peer departure (claim §2.5)", Pass: true}
	const trials = 20
	recovered, replans, migrations := 0, 0, 0
	for t := 0; t < trials; t++ {
		peers, net := paperSystem(3)
		p1 := peers["P1"]
		pr, err := p1.PlanQuery(gen.PaperQuery())
		if err != nil {
			r.check("planning", false)
			return r
		}
		// Alternate which redundant peer dies after routing.
		victim := pattern.PeerID("P4")
		if t%2 == 1 {
			victim = "P2"
		}
		net.Fail(victim)
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err == nil && rows.Len() > 0 {
			recovered++
		}
		m := p1.Engine.Metrics()
		replans += m.Replans
		migrations += m.Migrations
	}
	r.linef("  trials=%d recovered=%d total replans=%d migrations=%d", trials, recovered, replans, migrations)
	r.check("every redundant-peer failure is recovered", recovered == trials)
	r.check("recovery used adaptation (migration or ubQL discard + re-route)", replans+migrations >= trials)

	// Non-redundant failure: the only Q2 peer dies → query must fail.
	peers, net := paperSystem(2)
	p1 := peers["P1"]
	p1.Registry.Unregister("P1")
	p1.Registry.Unregister("P4")
	pr, _ := p1.PlanQuery(gen.PaperQuery())
	net.Fail("P3")
	_, err := p1.Engine.Execute(pr.Optimized)
	r.check("unrecoverable failure is reported, not silent", err != nil)
	return r
}

// claimDistribution exercises vertical, horizontal and mixed partitioning
// of the same data and verifies plan shapes and answer completeness.
func claimDistribution() *Report {
	r := &Report{ID: "dist", Title: "vertical/horizontal/mixed data distribution (claim §2.4)", Pass: true}
	syn := gen.NewSynthetic(3, false)
	const peers, chains = 3, 12
	r.linef("  chain query over p1⋈p2⋈p3, %d peers, %d chains:", peers, chains)
	r.linef("  %-12s %8s %10s %10s %8s", "distribution", "scans", "channels", "msgs", "rows")

	for _, dist := range []gen.Distribution{gen.Vertical, gen.Horizontal, gen.Mixed} {
		net := network.New()
		bases := syn.Bases(peers, chains, dist)
		var nodes []*peer.Peer
		for id, base := range bases {
			p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: syn.Schema, Base: base}, net)
			if err != nil {
				panic(err)
			}
			nodes = append(nodes, p)
		}
		// Sort so the root peer (nodes[0]) is the same on every run
		// regardless of map iteration order.
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, a := range nodes {
			for _, b := range nodes {
				if a != b {
					a.Learn(b.Advertisement())
				}
			}
		}
		root := nodes[0]
		net.ResetCounters()
		root.Engine.ResetMetrics()
		pr, err := root.PlanQuery(syn.Query(1, 3))
		if err != nil {
			r.check(dist.String()+" planning", false)
			continue
		}
		rows, err := root.Engine.Execute(pr.Optimized)
		if err != nil {
			r.check(dist.String()+" execution", false)
			continue
		}
		m := root.Engine.Metrics()
		c := net.Counters()
		r.linef("  %-12s %8d %10d %10d %8d",
			dist, plan.CountSubplans(pr.Optimized.Root), m.ChannelsOpened, c.Messages, rows.Len())
		r.check(dist.String()+": all chains found (completeness via ∪, correctness via ⋈)",
			rows.Len() == chains)
	}
	return r
}

// claimAdvertisements compares fine-grained active-schema advertisements
// against whole-schema advertisements: the per-peer load of irrelevant
// queries (paper §2.2: "the load of queries processed by each peer is
// smaller, since a peer receives only relevant to its base queries").
func claimAdvertisements() *Report {
	r := &Report{ID: "adv", Title: "active-schema vs whole-schema advertisements (claim §2.2)", Pass: true}
	syn := gen.NewSynthetic(6, false)
	const peers = 30
	bases := syn.Bases(peers, 12, gen.Vertical)

	queries := syn.RandomQueries(40, 2, distQuerySeed)

	run := func(whole bool) (annotations int) {
		reg := routing.NewRegistry()
		for id, base := range bases {
			if whole {
				reg.Register(id, pattern.WholeSchemaAdvertisement(syn.Schema))
			} else {
				reg.Register(id, pattern.DeriveActiveSchema(base, syn.Schema))
			}
		}
		router := routing.NewRouter(syn.Schema, reg)
		for _, q := range queries {
			ann := router.Route(q)
			for _, pp := range q.Patterns {
				annotations += len(ann.PeersFor(pp.ID))
			}
		}
		return annotations
	}
	fine := run(false)
	whole := run(true)
	r.linef("  subqueries dispatched over %d queries: active-schema=%d whole-schema=%d (%.1fx)",
		len(queries), fine, whole, float64(whole)/float64(fine))
	r.check("active-schemas dispatch far fewer subqueries", fine < whole)
	r.check("whole-schema advertisements spam every peer",
		whole == len(queries)*2*peers)
	return r
}

// claimTopN exercises the paper's future-work constraint (§5): capping
// the number of peers each path pattern is broadcast to trades answer
// completeness for processing load.
func claimTopN() *Report {
	r := &Report{ID: "topn", Title: "peer-count constraints: completeness vs load (future work §5)", Pass: true}
	r.linef("  %10s %10s %10s %8s", "max peers", "subplans", "msgs", "rows")
	var prevRows, prevMsgs int
	for i, cap := range []int{1, 2, 0} {
		peers, net := paperSystem(4)
		p1 := peers["P1"]
		p1.Router.MaxPeersPerPattern = cap
		pr, err := p1.PlanQuery(gen.PaperQuery())
		if err != nil {
			r.check("planning", false)
			return r
		}
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err != nil {
			r.check("execution", false)
			return r
		}
		c := net.Counters()
		label := fmt.Sprintf("%d", cap)
		if cap == 0 {
			label = "∞"
		}
		r.linef("  %10s %10d %10d %8d", label, plan.CountSubplans(pr.Optimized.Root), c.Messages, rows.Len())
		if i > 0 {
			r.check(fmt.Sprintf("cap=%s: rows and traffic grow together", label),
				rows.Len() >= prevRows && c.Messages >= prevMsgs)
		}
		prevRows, prevMsgs = rows.Len(), c.Messages
	}
	// The cap prefers full-coverage peers, so even cap=1 answers the
	// query (just with fewer alternatives).
	peers, _ := paperSystem(4)
	p1 := peers["P1"]
	p1.Router.MaxPeersPerPattern = 1
	pr, _ := p1.PlanQuery(gen.PaperQuery())
	rows, err := p1.Engine.Execute(pr.Optimized)
	r.check("cap=1 still yields a valid (correct, partial) answer", err == nil && rows.Len() > 0)
	return r
}
