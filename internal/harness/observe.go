package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"sqpeer/internal/admission"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/membership"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

func init() {
	register("observe", "CLAIM-OBSERVE: live operations plane — unified event log, flight recorder, SLO burn-rate monitor", claimObserve)
}

// Observation-plane scenario geometry: the Figure-2/3 fixture hardened
// like CLAIM-FAULT (deadlines, bounded retry, quarantine, partial
// answers), running membership detectors like CLAIM-MEMBER and a
// HoldMS-leased admission controller like CLAIM-OVERLOAD, under a 10%
// fault schedule whose crashes outlast the confirm-dead bound. The mix
// is chosen so every reconciled event family actually fires: gray
// failures and crashes drive retries and migrations, confirmed deaths
// drive condemnations, and gold work leases admitted mid-flight (the
// goldBurst injector) push occupancy over the Low watermark so bronze
// subplans shed.
const (
	observeSeed       = 20240805
	observeRounds     = 30
	observeRate       = 0.10
	observeCrashLen   = 6
	observeMaxConc    = 6
	observeHoldMS     = 3000.0
	observeBurstEvery = 1
)

// observeBench is the machine-readable artifact (BENCH_PR10.json).
type observeBench struct {
	Seed   int64 `json:"seed"`
	Rounds int   `json:"rounds"`
	// Event-log shape.
	Events            int            `json:"events"`
	EventsByComponent map[string]int `json:"eventsByComponent"`
	// Event↔counter reconciliation (counter value from the /metrics
	// scrape vs the event count; every pair must be exactly equal).
	Reconciled []observeReconcile `json:"reconciled"`
	// Flight recorder and SLO outcomes.
	Dumps       int      `json:"dumps"`
	DumpReasons []string `json:"dumpReasons"`
	Alerts      []string `json:"alerts"`
	// Overhead ablation: the identical scenario with the plane off.
	PlaneSimMS        float64 `json:"planeSimMs"`
	AblationSimMS     float64 `json:"ablationSimMs"`
	LatencyOverheadPc float64 `json:"latencyOverheadPct"`
	PlaneBytes        int     `json:"planeBytes"`
	AblationBytes     int     `json:"ablationBytes"`
	BytesOverheadPc   float64 `json:"bytesOverheadPct"`
	AnswersEqual      bool    `json:"answersEqual"`
	// Determinism.
	EventLogBytes int    `json:"eventLogBytes"`
	Digest        string `json:"digest"`
	Deterministic bool   `json:"deterministic"`
}

// observeReconcile is one counter-vs-event-count pair.
type observeReconcile struct {
	Counter string `json:"counter"`
	Metric  int    `json:"metricTotal"`
	Events  int    `json:"eventTotal"`
	Equal   bool   `json:"equal"`
}

// observeRun is one seeded pass.
type observeRun struct {
	answerDigest uint64 // outcomes and rows only: comparable across plane on/off
	simMS        float64
	bytes        int
	full         int
	partial      int
	failed       int

	// Plane-on extras (zero values when the plane is off).
	jsonl                                                       []byte
	events                                                      *obs.EventLog
	reg                                                         *obs.Registry
	rootRec                                                     *obs.FlightRecorder
	alerts                                                      []obs.Alert
	sloDumps                                                    int
	execShed, admShed, migrations, condemns, suspects, confirms int
}

// claimObserve runs the operations-plane claim: with the plane on, the
// unified event log is byte-identical across same-seed reruns, every
// plane counter reconciles exactly with its event count through the
// Prometheus scrape, anomalies freeze flight-recorder dumps carrying the
// query's span subtree and row ledger, SLO burn-rate alerts fire and
// trip dumps — and turning the whole plane off changes neither the
// answers nor (within 2%) the simulated latency and network bytes.
func claimObserve() *Report {
	r := &Report{ID: "observe", Title: "CLAIM-OBSERVE: live operations plane — unified event log, flight recorder, SLO burn-rate monitor", Pass: true}

	run := runObserveScenario(observeSeed, true)
	rerun := runObserveScenario(observeSeed, true)
	ablation := runObserveScenario(observeSeed, false)

	deterministic := bytes.Equal(run.jsonl, rerun.jsonl) && run.answerDigest == rerun.answerDigest
	answersEqual := run.answerDigest == ablation.answerDigest
	latPct := pctOver(run.simMS, ablation.simMS)
	bytePct := pctOver(float64(run.bytes), float64(ablation.bytes))

	// Reconcile every plane counter against its event count through the
	// exposition surface itself: render the registry to Prometheus text,
	// parse it back, and sum the family.
	promText := run.reg.PromText()
	samples, parseErr := obs.ParsePromText(promText)
	recs := []observeReconcile{
		reconcile(samples, "exec_shed_total", run.events.CountBy("exec", "shed")),
		reconcile(samples, "adm_shed_total", run.events.CountBy("admission", "shed")),
		reconcile(samples, "exec_migrations_total", run.events.CountBy("exec", "migrate")),
		reconcile(samples, "routing_health_condemnations_total", run.events.CountBy("health", "condemn")),
		reconcile(samples, "member_suspects_total", run.events.CountBy("membership", "suspect")),
		reconcile(samples, "member_confirmed_dead_total", run.events.CountBy("membership", "confirm-dead")),
	}

	dumps := run.rootRec.Dumps()
	var dumpReasons []string
	contextualDumps := 0
	for _, d := range dumps {
		dumpReasons = append(dumpReasons, d.Reason)
		if d.Context["spans"] != nil && d.Context["ledger"] != nil && len(d.Events) > 0 {
			contextualDumps++
		}
	}
	var alertNames []string
	for _, a := range run.alerts {
		alertNames = append(alertNames, a.Rule)
	}

	byComponent := map[string]int{}
	for _, ev := range run.events.Events() {
		byComponent[ev.Component]++
	}
	var comps []string
	for c := range byComponent {
		comps = append(comps, c)
	}
	sort.Strings(comps)

	r.linef("  %d rounds at %.0f%% faults: %d full, %d partial, %d rejected/failed", observeRounds, observeRate*100, run.full, run.partial, run.failed)
	line := fmt.Sprintf("  event log: %d events (", run.events.Len())
	for i, c := range comps {
		if i > 0 {
			line += ", "
		}
		line += fmt.Sprintf("%s %d", c, byComponent[c])
	}
	r.Lines = append(r.Lines, line+")")
	for _, rc := range recs {
		r.linef("  reconcile %-36s counter=%-4d events=%-4d", rc.Counter, rc.Metric, rc.Events)
	}
	r.linef("  flight recorder: %d dumps %v (%d with span subtree + ledger context)", len(dumps), dumpReasons, contextualDumps)
	r.linef("  slo: %d alerts %v, %d alert-tripped dumps", len(run.alerts), alertNames, run.sloDumps)
	r.linef("  overhead vs plane-off: latency %+.2f%% (%.0fms vs %.0fms), bytes %+.2f%% (%d vs %d)",
		latPct, run.simMS, ablation.simMS, bytePct, run.bytes, ablation.bytes)

	r.check("same-seed rerun: event log byte-identical and answers byte-identical", deterministic)
	allReconciled, allNonzero := true, true
	for _, rc := range recs {
		allReconciled = allReconciled && rc.Equal
		allNonzero = allNonzero && rc.Metric > 0
	}
	r.check("every plane counter reconciles exactly with its event count", allReconciled)
	r.check("every reconciled family actually fired (shed, migrate, condemn, suspect, confirm-dead)", allNonzero)
	r.check("≥1 anomaly-triggered dump carries the span subtree, ledger and frozen event ring", contextualDumps >= 1)
	r.check("SLO burn-rate alert fired and tripped a recorder dump", len(run.alerts) > 0 && run.sloDumps > 0)
	r.check("/metrics renders as parseable Prometheus text exposition", parseErr == nil && len(samples) > 0)
	r.check("plane-off ablation answers byte-identical", answersEqual)
	r.check("plane overhead <2% simulated latency", latPct < 2)
	r.check("plane overhead <2% network bytes", bytePct < 2)

	bench := observeBench{
		Seed: observeSeed, Rounds: observeRounds,
		Events: run.events.Len(), EventsByComponent: byComponent,
		Reconciled: recs,
		Dumps:      len(dumps), DumpReasons: dumpReasons, Alerts: alertNames,
		PlaneSimMS: run.simMS, AblationSimMS: ablation.simMS, LatencyOverheadPc: latPct,
		PlaneBytes: run.bytes, AblationBytes: ablation.bytes, BytesOverheadPc: bytePct,
		AnswersEqual:  answersEqual,
		EventLogBytes: len(run.jsonl),
		Digest:        fmt.Sprintf("%016x", run.answerDigest),
		Deterministic: deterministic,
	}
	if blob, err := json.MarshalIndent(bench, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR10.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR10.json", false)
	}
	// The sample post-mortem bundle rides along as a second artifact:
	// representative dumps with trimmed rings, not the full history (the
	// full bundles stay servable live at /debug/flightrec).
	if blob, err := json.MarshalIndent(sampleDumps(dumps), "", "  "); err == nil {
		r.Extras = append(r.Extras, Artifact{Name: "FLIGHTREC_PR10.json", Blob: append(blob, '\n')})
	} else {
		r.check("marshal FLIGHTREC_PR10.json", false)
	}
	return r
}

// sampleDumps picks a committable sample of the recorder's output: the
// first SLO-tripped dump and the first query-scoped anomaly dump (span
// subtree + ledger context), each with its frozen ring trimmed to the
// last 24 events. Selection and trimming are pure functions of the
// deterministic dump list, so the artifact is byte-stable across runs.
func sampleDumps(dumps []obs.Dump) []obs.Dump {
	const keepEvents = 24
	var sample []obs.Dump
	pick := func(match func(obs.Dump) bool) {
		for _, d := range dumps {
			if !match(d) {
				continue
			}
			if n := len(d.Events); n > keepEvents {
				d.Events = d.Events[n-keepEvents:]
			}
			sample = append(sample, d)
			return
		}
	}
	pick(func(d obs.Dump) bool { return strings.HasPrefix(d.Reason, "slo:") })
	pick(func(d obs.Dump) bool {
		return !strings.HasPrefix(d.Reason, "slo:") && d.Context["spans"] != nil && d.Context["ledger"] != nil
	})
	return sample
}

// pctOver returns how many percent `got` exceeds `base` (0 when base is
// 0 or got is under it).
func pctOver(got, base float64) float64 {
	if base <= 0 || got <= base {
		return 0
	}
	return (got/base - 1) * 100
}

// reconcile sums one counter family across the parsed scrape and pairs
// it with the event count.
func reconcile(samples []obs.PromSample, counter string, events int) observeReconcile {
	total := 0.0
	for _, s := range samples {
		if s.Name == counter {
			total += s.Value
		}
	}
	return observeReconcile{Counter: counter, Metric: int(total), Events: events, Equal: int(total) == events}
}

// runObserveScenario executes one seeded pass. With plane=true the
// shared event log, per-peer flight recorders, metrics registry, tracer
// and SLO evaluator are wired; with plane=false all of them stay nil —
// the ablation the overhead check compares against (the tracer stays on
// in both passes: tracing predates the plane and feeds the recorder's
// context, so the ablation isolates exactly the new machinery).
func runObserveScenario(seed int64, plane bool) observeRun {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(2)
	net := network.New()
	ids := []pattern.PeerID{"P1", "P2", "P3", "P4"}

	var (
		events  *obs.EventLog
		reg     *obs.Registry
		rootRec *obs.FlightRecorder
	)
	tracer := obs.NewTracer()
	if plane {
		events = obs.NewEventLog(net.NowMS)
		reg = obs.NewRegistry()
	}
	mopts := func() *membership.Options {
		return &membership.Options{Seed: seed, DeadlineMS: 200,
			SuspectTicks: 2, IndirectProbes: 2, DeadRetryTicks: 2}
	}
	recCfg := obs.DefaultRecorderConfig()
	recCfg.MaxDumps = 16
	planeCfg := func(cfg peer.Config) peer.Config {
		if !plane {
			return cfg
		}
		cfg.Events, cfg.Obs = events, reg
		rc := recCfg
		cfg.FlightRec = &rc
		return cfg
	}

	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range ids {
		p, err := peer.New(planeCfg(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema,
			Base: bases[id], Parallelism: 1, DeadlineMS: 200, Membership: mopts()}), net)
		if err != nil {
			panic(err)
		}
		peers[id] = p
	}
	rootCtl := admission.NewController(admission.Config{
		MaxConcurrent: observeMaxConc, HoldMS: observeHoldMS, Clock: net.NowMS,
	})
	cfg := planeCfg(peer.Config{ID: "P0", Kind: peer.ClientPeer, Schema: schema,
		Parallelism: 1, DeadlineMS: 200, MaxRetries: 3,
		AllowPartial: true, Quarantine: true, Membership: mopts(),
		Admission: rootCtl})
	cfg.Tracer = tracer
	p0, err := peer.New(cfg, net)
	if err != nil {
		panic(err)
	}
	rootRec = p0.Recorder
	for _, id := range ids {
		p0.Learn(peers[id].Advertisement())
		_ = peers[id].Membership.Join("P0")
	}
	net.ResetCounters()

	inj := faults.NewInjector(seed, faults.Rates{
		Drop: 1, Duplicate: 1, DelaySpike: 1, SpikeMS: 300,
	}.Scaled(observeRate))
	// Gold work leases admitted mid-flight, keyed to the subplan traffic
	// itself (the CLAIM-OVERLOAD trick): deterministic occupancy pressure
	// that pushes bronze work over the Low watermark.
	net.SetInjector(&goldBurst{ctl: rootCtl, every: observeBurstEvery, inner: inj})
	sched := faults.NewSchedule(seed, "P0", ids, observeRounds, faults.ScheduleRates{
		Crash: observeRate, CrashLen: observeCrashLen,
		Gray: observeRate, GrayLen: 1, GrayDelayMS: 1000,
		Flap: observeRate,
	})

	var slo *obs.SLOEvaluator
	firedRules := map[string]bool{}
	out := observeRun{events: events, reg: reg, rootRec: rootRec}
	if plane {
		slo = obs.NewSLOEvaluator(reg, net.NowMS, nil)
		slo.OnAlert = func(a obs.Alert) {
			// First alert per rule freezes a post-mortem bundle; later
			// evaluations of a still-burning budget don't re-trigger.
			if firedRules[a.Rule] {
				return
			}
			firedRules[a.Rule] = true
			out.sloDumps++
			rootRec.TriggerDump("slo:"+a.Rule, "", a.TMS)
		}
	}

	tick := func() {
		liveIDs := append([]pattern.PeerID{"P0"}, ids...)
		for _, id := range liveIDs {
			if !net.IsDown(id) {
				peers[id].Membership.Tick()
			}
		}
		p0.Health.Tick()
	}
	peers["P0"] = p0

	h := fnv.New64a()
	for round := 0; round < observeRounds; round++ {
		eff := sched.Apply(round, net, inj)
		for _, id := range eff.Restarted {
			peers[id].Membership.Rejoin()
			p0.Learn(peers[id].Advertisement())
		}
		tick()

		qos := admission.QoS{Tenant: "gold", Priority: admission.High}
		if round%2 == 1 {
			qos = admission.QoS{Tenant: "bronze", Priority: admission.Low}
		}
		res, err := p0.AskAnnotatedAs(gen.PaperRQL, qos)
		switch {
		case err != nil:
			out.failed++
			fmt.Fprintf(h, "%d:error\n", round)
		case res.Completeness.Complete:
			out.full++
			fmt.Fprintf(h, "%d:full:%v\n", round, res.Rows.Sorted())
		default:
			out.partial++
			var unanswered []string
			for _, u := range res.Completeness.Unanswered {
				unanswered = append(unanswered, u.PatternID)
			}
			fmt.Fprintf(h, "%d:partial:%v:%v\n", round, unanswered, res.Rows.Sorted())
		}
		if slo != nil {
			slo.Eval()
		}
		// Think time past the lease hold so every round's query is
		// admitted at occupancy zero; shedding then comes from the gold
		// bursts pumping occupancy mid-flight, not facade rejections.
		net.AdvanceMS(observeHoldMS)
	}
	out.answerDigest = h.Sum64()
	c := net.Counters()
	out.simMS, out.bytes = c.SimulatedMS, c.Bytes
	if plane {
		out.jsonl = events.JSONL()
		out.alerts = slo.Alerts()
		m := p0.Engine.Metrics()
		out.execShed, out.migrations = m.Shed, m.Migrations
	}
	return out
}
