package harness

import (
	"fmt"
	"strings"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
	"sqpeer/internal/rvl"
	"sqpeer/internal/stats"
)

func init() {
	register("fig1", "query-pattern extraction and active-schema derivation (Figure 1)", fig1)
	register("fig2", "semantic query routing over P1–P4 (Figure 2)", fig2)
	register("fig3", "plan generation and channel deployment (Figure 3)", fig3)
	register("fig4", "algebraic optimization Plan 1 → Plan 2 → Plan 3 (Figure 4)", fig4)
	register("fig5", "data vs query shipping under three regimes (Figure 5)", fig5)
	register("fig6", "hybrid P2P query processing (Figure 6)", fig6)
	register("fig7", "ad-hoc interleaved routing and processing (Figure 7)", fig7)
}

// fig1 parses the Figure-1 RQL query and RVL view and checks the
// extracted intensional artifacts against the figure.
func fig1() *Report {
	r := &Report{ID: "fig1", Title: "query-pattern extraction and active-schema derivation (Figure 1)", Pass: true}
	schema := gen.PaperSchema()

	c, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		r.check("RQL parses", false)
		return r
	}
	r.linef("  RQL query pattern: %s", c.Pattern)
	q1 := c.Pattern.Patterns[0]
	r.check("end-point classes from schema definitions (C1, C2, C3)",
		q1.Domain == gen.N1("C1") && q1.Range == gen.N1("C2") &&
			c.Pattern.Patterns[1].Range == gen.N1("C3"))
	r.check("projections X, Y marked", len(c.Pattern.Projections) == 2)

	views, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
	if err != nil {
		r.check("RVL parses", false)
		return r
	}
	as := views[0].ActiveSchema()
	r.linef("  RVL active-schema:  %s", as)
	r.check("view populates prop4, C5, C6 only",
		as.HasProperty(gen.N1("prop4")) && !as.HasProperty(gen.N1("prop1")) &&
			as.HasClass(gen.N1("C5")) && as.HasClass(gen.N1("C6")))

	// Throughput of the front-end (parse+analyze), for scale.
	clock := StartClock()
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := rql.ParseAndAnalyze(gen.PaperRQL, schema); err != nil {
			r.check("repeated parse", false)
			return r
		}
	}
	h := benchObserve("fig1.parse", clock.Microseconds()/n)
	r.linef("  parse+analyze throughput: %.0f queries/s", 1e6/h.Mean())
	return r
}

// fig2 reproduces the Figure-2 annotation and sweeps routing cost with
// SON size and schema size.
func fig2() *Report {
	r := &Report{ID: "fig2", Title: "semantic query routing over P1–P4 (Figure 2)", Pass: true}
	schema := gen.PaperSchema()
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	router := routing.NewRouter(schema, reg)
	ann, st := router.RouteWithStats(gen.PaperQuery())
	r.linef("  annotation: %s  (comparisons=%d)", ann, st.Comparisons)
	r.check("Q1 → [P1 P2 P4] (P4 via prop4 ⊑ prop1)",
		fmt.Sprint(ann.PeersFor("Q1")) == "[P1 P2 P4]")
	r.check("Q2 → [P1 P3 P4]", fmt.Sprint(ann.PeersFor("Q2")) == "[P1 P3 P4]")
	r.check("annotation complete", ann.Complete())
	rw := ann.RewritesFor("Q1", "P4")
	r.check("P4's Q1 subquery rewritten to prop4",
		len(rw) == 1 && rw[0].Property == gen.N1("prop4"))

	// Sweep: routing time vs number of peers × schema width.
	r.linef("  routing-cost sweep (chain query of length 3):")
	r.linef("    %8s %8s %12s %14s", "peers", "props", "comparisons", "µs/route")
	for _, nProps := range []int{8, 32} {
		syn := gen.NewSynthetic(nProps, true)
		q := syn.Query(1, 3)
		for _, nPeers := range []int{10, 100, 1000} {
			sreg := routing.NewRegistry()
			bases := syn.Bases(nPeers, nPeers, gen.Vertical)
			for id, as := range gen.ActiveSchemas(syn.Schema, bases) {
				sreg.Register(id, as)
			}
			srouter := routing.NewRouter(syn.Schema, sreg)
			clock := StartClock()
			const reps = 50
			var cmps int
			for i := 0; i < reps; i++ {
				_, sst := srouter.RouteWithStats(q)
				cmps = sst.Comparisons
			}
			h := benchObserve(fmt.Sprintf("fig2.route.peers%d.props%d", nPeers, nProps),
				clock.Microseconds()/reps)
			r.linef("    %8d %8d %12d %14.1f", nPeers, nProps, cmps, h.Mean())
		}
	}
	return r
}

// fig3 generates Figure 3's Plan 1, executes it at P1 and verifies the
// one-channel-per-peer deployment.
func fig3() *Report {
	r := &Report{ID: "fig3", Title: "plan generation and channel deployment (Figure 3)", Pass: true}
	peers, net := paperSystem(3)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		r.check("planning", false)
		return r
	}
	r.linef("  Plan 1: %s", pr.Raw)
	r.check("Plan 1 = ⋈(∪(Q1@P1,Q1@P2,Q1@P4), ∪(Q2@P1,Q2@P3,Q2@P4))",
		pr.Raw.String() == "⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))")
	rows, err := p1.Engine.Execute(pr.Raw)
	if err != nil {
		r.check("execution", false)
		return r
	}
	m := p1.Engine.Metrics()
	r.linef("  answer rows=%d  channels=%d  subplans=%d  network messages=%d",
		rows.Len(), m.ChannelsOpened, m.SubplansShipped, net.Counters().Messages)
	r.check("one channel per contributing remote peer (3)", m.ChannelsOpened == 3)
	r.check("horizontal ∪ + vertical ⋈ yield the complete answer (9 rows)", rows.Len() == 9)
	return r
}

// fig4 applies the Figure-4 rewrites and measures what they buy: fewer
// subplans shipped and fewer bytes moved, with identical answers.
func fig4() *Report {
	r := &Report{ID: "fig4", Title: "algebraic optimization Plan 1 → Plan 2 → Plan 3 (Figure 4)", Pass: true}
	peers, _ := paperSystem(20)
	p1 := peers["P1"]
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		r.check("planning", false)
		return r
	}
	plan2 := optimizer.DistributeJoinsOverUnions(pr.Raw.Root)
	plan3 := pr.Optimized
	r.linef("  Plan 1: %s", pr.Raw)
	r.linef("  Plan 2: %d union branches after join-over-union distribution", len(plan2.Children()))
	r.linef("  Plan 3: %s", plan3)
	r.check("Plan 2 has 3×3 = 9 branches", len(plan2.Children()) == 9)
	r.check("Plan 3 pushes prop1⋈prop2 to P1 and P4",
		containsAll(plan3.String(), "[Q1⋈Q2]@P1", "[Q1⋈Q2]@P4"))
	r.check("rules reduce subplans vs Plan 2",
		plan.CountSubplans(plan3.Root) < plan.CountSubplans(plan2))

	// Answer preservation on the Figure-2 system.
	rows1, err := p1.Engine.Execute(pr.Raw)
	if err != nil {
		r.check("Plan 1 execution", false)
		return r
	}
	rows3, err := p1.Engine.Execute(plan3)
	if err != nil {
		r.check("Plan 3 execution", false)
		return r
	}
	r.check("identical answers", fmt.Sprint(rows1.Sorted()) == fmt.Sprint(rows3.Sorted()))

	// Measured transfer effect: the rewrite pays off when joins are
	// selective (the paper's premise: "the expected size of the join
	// result is smaller than any of the inputs"). Here only 10 of 300
	// prop1 pairs continue into prop2, and Plan 3's branch joins are
	// pushed to the data (query shipping), so joined 10-row results ship
	// instead of raw 100-row scans.
	selPeers, selNet := selectiveSystem(300, 10)
	s1 := selPeers["P1"]
	spr, err := s1.PlanQuery(gen.PaperQuery())
	if err != nil {
		r.check("selective planning", false)
		return r
	}
	base1, err := s1.Engine.Execute(spr.Raw) // data shipping, Plan 1
	if err != nil {
		r.check("selective Plan 1 execution", false)
		return r
	}
	cRaw := selNet.Counters()
	selNet.ResetCounters()
	s1.Engine.Policy = optimizer.QueryShipping
	base3, err := s1.Engine.Execute(spr.Optimized) // query shipping, Plan 3
	if err != nil {
		r.check("selective Plan 3 execution", false)
		return r
	}
	cOpt := selNet.Counters()
	r.linef("  measured (selective 10%%): Plan 1+data → %6d bytes; Plan 3+query → %6d bytes",
		cRaw.Bytes, cOpt.Bytes)
	r.check("selective answers identical",
		fmt.Sprint(base1.Sorted()) == fmt.Sprint(base3.Sorted()))
	r.check("optimized plan moves fewer bytes on selective joins", cOpt.Bytes < cRaw.Bytes)
	return r
}

// selectiveSystem builds the Figure-2 peers but with selective joins:
// prop1Pairs prop1/prop4 pairs per provider, of which only joinKeys
// continue into prop2.
func selectiveSystem(prop1Pairs, joinKeys int) (map[pattern.PeerID]*peer.Peer, *network.Network) {
	schema := gen.PaperSchema()
	net := network.New()
	mk := func(id pattern.PeerID, props map[string]int) *peer.Peer {
		b := rdf.NewBase()
		y := func(i int) rdf.IRI {
			return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
		}
		for prop, n := range props {
			for i := 0; i < n; i++ {
				switch prop {
				case "prop1":
					x := rdf.IRI(fmt.Sprintf("http://d/%s#x%d", id, i))
					b.Add(rdf.Statement(x, gen.N1("prop1"), y(i)))
				case "prop4":
					x := rdf.IRI(fmt.Sprintf("http://d/%s#x5_%d", id, i))
					b.Add(rdf.Statement(x, gen.N1("prop4"), y(i)))
				case "prop2":
					z := rdf.IRI(fmt.Sprintf("http://d/%s#z%d", id, i))
					b.Add(rdf.Statement(y(i), gen.N1("prop2"), z))
				}
			}
		}
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: b}, net)
		if err != nil {
			panic(err)
		}
		return p
	}
	peers := map[pattern.PeerID]*peer.Peer{
		"P1": mk("P1", map[string]int{"prop1": prop1Pairs, "prop2": joinKeys}),
		"P2": mk("P2", map[string]int{"prop1": prop1Pairs}),
		"P3": mk("P3", map[string]int{"prop2": joinKeys}),
		"P4": mk("P4", map[string]int{"prop4": prop1Pairs, "prop2": joinKeys}),
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	net.ResetCounters()
	return peers, net
}

// fig5 evaluates the three shipping regimes with the cost model and
// verifies the paper's verdicts; regime (a) is also executed for real to
// confirm the measured transfer cost agrees with the decision.
func fig5() *Report {
	r := &Report{ID: "fig5", Title: "data vs query shipping under three regimes (Figure 5)", Pass: true}
	q := gen.PaperQuery()
	mkPlan := func() plan.Node {
		return plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
	}
	mkCatalog := func(cards map[pattern.PeerID]int) *stats.Catalog {
		cat := stats.NewCatalog()
		for id, n := range cards {
			cat.PutPeer(&stats.PeerStats{Peer: id, Slots: 4,
				PropertyCard:     map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n},
				DistinctSubjects: map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n},
				DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): n, gen.N1("prop2"): n}})
		}
		return cat
	}
	report := func(name string, cat *stats.Catalog, wantQueryWins bool) {
		cm := optimizer.NewCostModel(cat)
		data := cm.EstimateCost(mkPlan(), "P1", optimizer.DataShipping)
		query := cm.EstimateCost(mkPlan(), "P1", optimizer.QueryShipping)
		verdict := "data"
		if query.TotalMS < data.TotalMS {
			verdict = "query"
		}
		r.linef("  %-38s data=%9.1fms query=%9.1fms → %s-shipping",
			name, data.TotalMS, query.TotalMS, verdict)
		want := "data"
		if wantQueryWins {
			want = "query"
		}
		r.check(name+" verdict matches the paper", verdict == want)
	}

	catA := mkCatalog(map[pattern.PeerID]int{"P1": 0, "P2": 1000, "P3": 1000})
	catA.PutLink("P1", "P3", stats.Link{LatencyMS: 500, BandwidthKBps: 10})
	catA.PutLink("P2", "P3", stats.Link{LatencyMS: 5, BandwidthKBps: 10000})
	report("(a) slow P1–P3 link", catA, true)

	catB := mkCatalog(map[pattern.PeerID]int{"P1": 0, "P2": 1000, "P3": 1000})
	catB.SetLoad("P2", 4000)
	report("(b) P2 heavily loaded", catB, false)

	catC := mkCatalog(map[pattern.PeerID]int{"P1": 0})
	catC.PutPeer(&stats.PeerStats{Peer: "P2", Slots: 4,
		PropertyCard:     map[rdf.IRI]int{gen.N1("prop1"): 50000},
		DistinctSubjects: map[rdf.IRI]int{gen.N1("prop1"): 50000},
		DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): 50000}})
	catC.PutPeer(&stats.PeerStats{Peer: "P3", Slots: 4,
		PropertyCard:     map[rdf.IRI]int{gen.N1("prop2"): 100},
		DistinctSubjects: map[rdf.IRI]int{gen.N1("prop2"): 100},
		DistinctObjects:  map[rdf.IRI]int{gen.N1("prop2"): 100}})
	report("(c) large intermediate at P2", catC, true)

	// Regime (a), measured: execute both policies over a real network
	// with the slow P1–P3 link and compare accounted transfer time.
	measured := func(policy optimizer.ShippingPolicy) (float64, int) {
		peers, net := paperSystem(40)
		net.SetLink("P1", "P3", stats.Link{LatencyMS: 500, BandwidthKBps: 10})
		net.SetLink("P2", "P3", stats.Link{LatencyMS: 5, BandwidthKBps: 10000})
		p1 := peers["P1"]
		p1.Engine.Policy = policy
		pl := &plan.Plan{Root: mkPlan(), Query: q}
		if _, err := p1.Engine.Execute(pl); err != nil {
			return -1, 0
		}
		c := net.Counters()
		return c.SimulatedMS, c.Bytes
	}
	dataMS, dataBytes := measured(optimizer.DataShipping)
	queryMS, queryBytes := measured(optimizer.QueryShipping)
	r.linef("  (a) measured: data-shipping %0.1fms/%dB, query-shipping %0.1fms/%dB",
		dataMS, dataBytes, queryMS, queryBytes)
	r.check("(a) measured transfer agrees with the decision", queryMS < dataMS)
	return r
}

// fig6 reproduces the hybrid scenario and sweeps cluster size.
func fig6() *Report {
	r := &Report{ID: "fig6", Title: "hybrid P2P query processing (Figure 6)", Pass: true}
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	for _, sp := range []pattern.PeerID{"SP1", "SP2", "SP3"} {
		if _, err := h.AddSuperPeer(sp); err != nil {
			r.check("backbone", false)
			return r
		}
	}
	for id, base := range figure6Bases(3) {
		if _, err := h.AddSimplePeer(id, base, "SP1"); err != nil {
			r.check("cluster", false)
			return r
		}
	}
	net.ResetCounters()
	p1, _ := h.Peer("P1")
	ann, err := p1.RequestRouting("SP1", gen.PaperQuery())
	if err != nil {
		r.check("routing phase", false)
		return r
	}
	r.linef("  SP1 annotation: %s", ann)
	r.check("Q1 → [P2 P3], Q2 → [P5] as in the figure",
		fmt.Sprint(ann.PeersFor("Q1")) == "[P2 P3]" && fmt.Sprint(ann.PeersFor("Q2")) == "[P5]")
	r.check("super-peer plan complete (no holes, no re-broadcast)", ann.Complete())
	rows, err := h.Query("P1", gen.PaperRQL)
	if err != nil {
		r.check("processing phase", false)
		return r
	}
	c := net.Counters()
	r.linef("  answer rows=%d  messages=%d  irrelevant-peer (P4) messages=%d",
		rows.Len(), c.Messages, c.PerNodeReceived["P4"])
	r.check("P1 joins P2+P3 prop1 with P5 prop2 (6 rows)", rows.Len() == 6)
	r.check("irrelevant peer receives zero messages", c.PerNodeReceived["P4"] == 0)

	// Cluster-size sweep: messages per query as the SON grows (relevant
	// fraction fixed at 20%).
	r.linef("  cluster-size sweep (20%% relevant peers):")
	r.linef("    %8s %12s %16s", "peers", "msgs/query", "peers contacted")
	for _, n := range []int{10, 50, 100} {
		msgs, contacted := hybridSweep(n)
		r.linef("    %8d %12d %16d", n, msgs, contacted)
	}
	return r
}

// hybridSweep builds a hybrid SON with n simple-peers (20% holding
// relevant data, interleaved by construction) and returns messages and
// contacted peers for one query.
func hybridSweep(n int) (msgs, contacted int) {
	net := network.New()
	h := overlay.NewHybrid(net, gen.PaperSchema())
	if _, err := h.AddSuperPeer("SP1"); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		id := pattern.PeerID(fmt.Sprintf("N%03d", i))
		var base *rdf.Base
		switch {
		case i == 0:
			base = rdf.NewBase() // the asking peer
		case i%5 == 1:
			base = roleBase(string(id), 2, "prop1")
		case i%5 == 2:
			base = roleBase(string(id), 2, "prop2")
		default:
			base = roleBase(string(id), 2, "prop3") // irrelevant
		}
		if _, err := h.AddSimplePeer(id, base, "SP1"); err != nil {
			panic(err)
		}
	}
	net.ResetCounters()
	if _, err := h.Query("N000", gen.PaperRQL); err != nil {
		panic(err)
	}
	c := net.Counters()
	for id, got := range c.PerNodeReceived {
		if got > 0 && id != "SP1" && id != "N000" {
			contacted++
		}
	}
	return c.Messages, contacted
}

// fig7 reproduces the ad-hoc scenario including the failed channel.
func fig7() *Report {
	r := &Report{ID: "fig7", Title: "ad-hoc interleaved routing and processing (Figure 7)", Pass: true}
	build := func() (*overlay.Adhoc, *network.Network) {
		net := network.New()
		a := overlay.NewAdhoc(net, gen.PaperSchema())
		mustAdd := func(id pattern.PeerID, base *rdf.Base, nbrs ...pattern.PeerID) {
			if _, err := a.AddPeer(id, base, nbrs...); err != nil {
				panic(err)
			}
		}
		mustAdd("P1", rdf.NewBase())
		mustAdd("P2", roleBase("P2", 3, "prop1"), "P1")
		mustAdd("P3", roleBase("P3", 3, "prop1"), "P1")
		mustAdd("P5", roleBase("P5", 3, "prop2"), "P2")
		return a, net
	}

	a, net := build()
	p1, _ := a.Peer("P1")
	ann := p1.Router.Route(gen.PaperQuery())
	partial, _ := plan.Generate(ann)
	r.linef("  P1's partial plan: %s", partial)
	r.check("Q2 is a hole at P1 (Figure 7a)", plan.HasHoles(partial.Root))
	rows, err := a.Query("P1", gen.PaperRQL)
	if err != nil {
		r.check("interleaved resolution", false)
		return r
	}
	c := net.Counters()
	r.linef("  answer rows=%d  forwards=%d  messages=%d",
		rows.Len(), c.PerKind["adhoc.plan"], c.Messages)
	r.check("P2 completes the plan via P5 (6 rows back at P1)", rows.Len() == 6)
	r.check("exactly one forward needed", c.PerKind["adhoc.plan"] == 1)

	// The failed-channel variant: P3 dies, the query still completes.
	a2, net2 := build()
	net2.Fail("P3")
	rows2, err := a2.Query("P1", gen.PaperRQL)
	if err != nil {
		r.check("failed-channel recovery", false)
		return r
	}
	r.linef("  with P3 failed: rows=%d (P2's contribution only)", rows2.Len())
	r.check("failed channel to P3 tolerated", rows2.Len() == 3)

	// Neighborhood-depth sweep: with depth-2 expansion P1 routes alone.
	a3, _ := build()
	learned, _ := a3.ExpandNeighborhood("P1", 2)
	p1c, _ := a3.Peer("P1")
	ann3 := p1c.Router.Route(gen.PaperQuery())
	r.linef("  after 2-depth schema pull: learned=%d annotation=%s", learned, ann3)
	r.check("2-depth expansion makes P1's routing complete", ann3.Complete())
	return r
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
