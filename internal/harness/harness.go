// Package harness implements the experiment suite of DESIGN.md §4: one
// reproducible experiment per paper figure (FIG-1 … FIG-7) plus the
// quantified-claim experiments (CLAIM-SON, CLAIM-SUB, CLAIM-ADAPT,
// CLAIM-DIST). Each experiment builds its own deterministic system,
// exercises it, and emits paper-style result rows. The cmd/sqpeer-bench
// binary prints reports; EXPERIMENTS.md records their outcomes against
// the paper's claims.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's outcome.
type Report struct {
	// ID is the experiment id (e.g. "fig2", "son").
	ID string
	// Title says what the experiment reproduces.
	Title string
	// Lines are the result rows, ready to print.
	Lines []string
	// Pass aggregates the experiment's self-checks: true when every
	// reproduced figure/claim matched the paper's statement.
	Pass bool
	// ArtifactName/ArtifactJSON optionally carry a machine-readable
	// result file (e.g. BENCH_PR2.json) that cmd/sqpeer-bench writes next
	// to its stdout report.
	ArtifactName string
	ArtifactJSON []byte
	// Extras are additional artifact files the experiment produced
	// beyond the primary JSON (e.g. a sample flight-recorder dump);
	// cmd/sqpeer-bench writes each one alongside the primary artifact.
	Extras []Artifact
}

// Artifact is one named side file an experiment emits.
type Artifact struct {
	Name string
	Blob []byte
}

func (r *Report) linef(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// check records a named self-check; any failure flips Pass.
func (r *Report) check(name string, ok bool) {
	status := "OK "
	if !ok {
		status = "FAIL"
		r.Pass = false
	}
	r.linef("  [%s] %s", status, name)
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	verdict := "REPRODUCED"
	if !r.Pass {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(&b, "--- %s: %s\n", strings.ToUpper(r.ID), verdict)
	return b.String()
}

// experiments maps ids to runners; registered in init functions of the
// per-experiment files.
var experiments = map[string]struct {
	title string
	run   func() *Report
}{}

func register(id, title string, run func() *Report) {
	experiments[id] = struct {
		title string
		run   func() *Report
	}{title, run}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(experiments))
	for id := range experiments {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Report, error) {
	e, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(), nil
}

// All executes every experiment in id order.
func All() []*Report {
	var out []*Report
	for _, id := range IDs() {
		r, _ := Run(id)
		out = append(out, r)
	}
	return out
}
