package harness

import (
	"sqpeer/internal/gen"
	"sqpeer/internal/mediate"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
)

func init() {
	register("med", "schema mediation through articulations (§2.4/§3.1)", claimMediation)
}

const medForeignNS = "http://other-community.example/f#"

func medF(local string) rdf.IRI { return rdf.IRI(medForeignNS + local) }

// claimMediation demonstrates the super-peer mediator role: a query in a
// foreign community vocabulary is reformulated through articulations into
// the n1 schema and answered by the Figure-2 peers.
func claimMediation() *Report {
	r := &Report{ID: "med", Title: "schema mediation through articulations (§2.4/§3.1)", Pass: true}
	foreign := rdf.NewSchema(medForeignNS)
	for _, c := range []string{"D1", "D2", "D3"} {
		foreign.MustAddClass(medF(c))
	}
	foreign.MustAddProperty(medF("rel1"), medF("D1"), medF("D2"))
	foreign.MustAddProperty(medF("rel2"), medF("D2"), medF("D3"))

	art := mediate.NewArticulation(medForeignNS, gen.PaperNS).
		MapClass(medF("D1"), gen.N1("C1")).
		MapClass(medF("D2"), gen.N1("C2")).
		MapClass(medF("D3"), gen.N1("C3")).
		MapProperty(medF("rel1"), gen.N1("prop1")).
		MapProperty(medF("rel2"), gen.N1("prop2"))
	if err := art.Validate(foreign, gen.PaperSchema()); err != nil {
		r.check("articulation validates", false)
		return r
	}
	r.check("articulation validates against both schemas", true)

	foreignQ := &pattern.QueryPattern{
		SchemaName: medForeignNS,
		Patterns: []pattern.PathPattern{
			{ID: "Q1", SubjectVar: "X", ObjectVar: "Y", Property: medF("rel1"), Domain: medF("D1"), Range: medF("D2")},
			{ID: "Q2", SubjectVar: "Y", ObjectVar: "Z", Property: medF("rel2"), Domain: medF("D2"), Range: medF("D3")},
		},
		Projections: []string{"X", "Y"},
	}
	reformulated, err := art.Reformulate(foreignQ, gen.PaperSchema())
	if err != nil {
		r.check("reformulation", false)
		return r
	}
	r.linef("  foreign query:      rel1 ⋈ rel2 over %s", medForeignNS)
	r.linef("  reformulated query: %s", reformulated)
	r.check("reformulation lands on the native n1 pattern",
		reformulated.String() == gen.PaperQuery().String())

	peers, _ := paperSystem(3)
	ann := routing.NewRouter(gen.PaperSchema(), peers["P1"].Registry).Route(reformulated)
	pl, err := plan.Generate(ann)
	if err != nil {
		r.check("plan", false)
		return r
	}
	rows, err := peers["P1"].Engine.Execute(pl)
	if err != nil {
		r.check("execution", false)
		return r
	}
	r.linef("  mediated answer: %d rows (native query yields 9)", rows.Len())
	r.check("mediated answer equals the native answer", rows.Len() == 9)

	// Round trip through the inverse articulation.
	inv, err := art.Invert()
	if err != nil {
		r.check("inversion", false)
		return r
	}
	back, err := inv.Reformulate(reformulated, foreign)
	r.check("inverse articulation restores the foreign pattern",
		err == nil && back.String() == foreignQ.String())
	r.linef("  round trip via inverse articulation: %s", back)
	return r
}
