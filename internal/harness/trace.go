package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
)

func init() {
	register("trace", "CLAIM-TRACE: deterministic distributed query tracing with exact critical-path attribution (§2.4/§2.5)", claimTrace)
}

// tracedSystem is paperSystem with observability wired in: every peer
// publishes into one shared registry, and only the asking root (P1)
// carries a tracer — remote peers' spans reach the root's trace through
// the channel layer, not through local tracers.
func tracedSystem(pairs int) (map[pattern.PeerID]*peer.Peer, *network.Network, *obs.Tracer, *obs.Registry) {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		cfg := peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id], Obs: reg}
		if id == "P1" {
			cfg.Tracer = tracer
		}
		p, err := peer.New(cfg, net)
		if err != nil {
			panic(err)
		}
		peers[id] = p
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	net.ResetCounters()
	return peers, net, tracer, reg
}

// tracedAsk runs the Figure-3 paper query at P1 on a traced system and
// returns the tracer, registry, network counters and an answer digest.
// Parallelism is pinned to 1 so the byte-identity gate has no schedule
// freedom at all; the k-token queue model reintroduces parallelism
// analytically at Analyze time.
func tracedAsk(pairs int) (*obs.Tracer, *obs.Registry, network.Counters, string) {
	peers, net, tracer, reg := tracedSystem(pairs)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	rows, err := p1.Ask(gen.PaperRQL)
	if err != nil {
		panic(fmt.Sprintf("trace: traced ask failed: %v", err))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", rows.Sorted())
	return tracer, reg, net.Counters(), fmt.Sprintf("%016x", h.Sum64())
}

// untracedAsk is the control: the same system and query with no tracer
// and no registry, for the overhead comparison.
func untracedAsk(pairs int) (network.Counters, string) {
	peers, net := paperSystem(pairs)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	rows, err := p1.Ask(gen.PaperRQL)
	if err != nil {
		panic(fmt.Sprintf("trace: untraced ask failed: %v", err))
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", rows.Sorted())
	return net.Counters(), fmt.Sprintf("%016x", h.Sum64())
}

// traceBench is the machine-readable artifact (BENCH_PR5.json).
type traceBench struct {
	Seedless        bool             `json:"seedless"` // scenario is fully deterministic, no RNG involved
	Pairs           int              `json:"pairs"`
	Spans           int              `json:"spans"`
	RemoteSpans     int              `json:"remoteSpans"`
	EndToEndMS      float64          `json:"endToEndMs"`
	Attribution     *obs.Attribution `json:"attribution"`
	UntracedBytes   int              `json:"untracedBytes"`
	TracedBytes     int              `json:"tracedBytes"`
	BytesOverhead   float64          `json:"bytesOverheadPct"`
	UntracedMS      float64          `json:"untracedSimulatedMs"`
	TracedMS        float64          `json:"tracedSimulatedMs"`
	LatencyOverhead float64          `json:"latencyOverheadPct"`
	MetricRows      int              `json:"metricRows"`
}

// claimTrace validates the observability layer end to end.
//
// (a) Determinism: two fresh same-scenario runs export byte-identical
// JSONL span listings (no wall clock, no RNG, creation-order layout).
// (b) Cross-peer propagation: remote peers' execution appears in the
// root's trace as grafted remote@<peer> subtrees, although only P1 owns
// a tracer. (c) Exact attribution: per-leaf phase buckets sum to each
// leaf's total and all self charges sum to the end-to-end root total
// (Attribution.Check). (d) Bounded cost: at Figure-3 scale the traced
// run ships <=5% more bytes and simulated latency than the untraced
// control, and the answers are identical; the disabled path allocates
// nothing (proved by obs.TestDisabledPathAllocations under `go test`).
// (e) The unified registry serves every layer's counters in one sorted
// snapshot, including the stats-packet arrivals of this run.
func claimTrace() *Report {
	r := &Report{ID: "trace", Title: "CLAIM-TRACE: deterministic distributed query tracing with exact critical-path attribution (§2.4/§2.5)", Pass: true}
	const pairs = 200

	tracer1, reg, c1, digest1 := tracedAsk(pairs)
	tracer2, _, _, _ := tracedAsk(pairs)
	jsonl1, jsonl2 := tracer1.JSONL(), tracer2.JSONL()

	traces := tracer1.Traces()
	if len(traces) == 0 {
		r.check("traced run produced a trace", false)
		return r
	}
	tr := traces[0]
	layout := tr.Layout()
	remoteSpans := 0
	remoteOffP1 := false
	unclosed := 0
	for _, es := range layout {
		if es.Kind == obs.KindRemote {
			remoteSpans++
			if es.Peer != "P1" && es.Peer != "" {
				remoteOffP1 = true
			}
		}
		if _, ok := es.Attrs["unclosed"]; ok {
			unclosed++
		}
	}

	r.linef("  Figure-3 query at %d pairs: %d spans, %d shipped remote subtrees, end-to-end %.2f logical ms",
		pairs, len(layout), remoteSpans, tr.Root().TotalMS())
	r.check("(a) same-scenario reruns export byte-identical JSONL",
		len(jsonl1) > 0 && bytes.Equal(jsonl1, jsonl2))
	r.check("(a) every span closed on every return path", unclosed == 0)
	r.check("(b) remote peers' spans grafted into P1's trace without remote tracers",
		remoteSpans >= 2 && remoteOffP1)
	r.check("chrome trace_event export is valid JSON", json.Valid(tracer1.TraceEventJSON()))

	att := obs.Analyze(tr, 2)
	if att == nil {
		r.check("(c) attribution computed", false)
		return r
	}
	for _, l := range strings.Split(strings.TrimRight(att.String(), "\n"), "\n") {
		r.linef("  %s", l)
	}
	r.check("(c) attribution sums exactly (per leaf and end-to-end)", att.Check() == nil)
	r.check("(c) every dispatch leaf attributed", len(att.Leaves) >= 3)
	r.check("(c) modeled 2-token makespan between serial and sum bounds",
		att.ModeledMakespanMS <= att.EndToEndMS+1e-6)

	cu, digestU := untracedAsk(pairs)
	bytesOverhead := pct(c1.Bytes-cu.Bytes, cu.Bytes)
	latOverhead := pctF(c1.SimulatedMS-cu.SimulatedMS, cu.SimulatedMS)
	r.linef("  overhead vs untraced control: bytes %d→%d (+%.2f%%), simulated %.1fms→%.1fms (+%.2f%%)",
		cu.Bytes, c1.Bytes, bytesOverhead, cu.SimulatedMS, c1.SimulatedMS, latOverhead)
	r.check("(d) tracing changes no answers", digest1 == digestU)
	r.check("(d) enabled tracing ships <=5% extra bytes at Figure-3 scale", bytesOverhead <= 5)
	r.check("(d) enabled tracing adds <=5% simulated latency", latOverhead <= 5)

	snap := reg.Snapshot()
	var statsReceived, rowsShipped float64
	for _, m := range snap {
		switch m.Name {
		case "exec_stats_packets_received_total":
			statsReceived += m.Value
		case "exec_rows_shipped_total":
			rowsShipped += m.Value
		}
	}
	r.linef("  unified registry: %d metric rows; stats packets received=%.0f rows shipped=%.0f",
		len(snap), statsReceived, rowsShipped)
	r.check("(e) one registry serves exec, channel and stats-arrival counters",
		len(snap) > 20 && statsReceived > 0 && rowsShipped > 0)

	bench := traceBench{
		Seedless: true, Pairs: pairs,
		Spans: len(layout), RemoteSpans: remoteSpans,
		EndToEndMS: tr.Root().TotalMS(), Attribution: att,
		UntracedBytes: cu.Bytes, TracedBytes: c1.Bytes, BytesOverhead: bytesOverhead,
		UntracedMS: cu.SimulatedMS, TracedMS: c1.SimulatedMS, LatencyOverhead: latOverhead,
		MetricRows: len(snap),
	}
	if blob, err := json.MarshalIndent(bench, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR5.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR5.json", false)
	}
	return r
}

func pct(delta, base int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(delta) / float64(base)
}

func pctF(delta, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * delta / base
}

// TraceBundle is a captured trace ready to write to disk: the Chrome
// trace_event file (load in chrome://tracing or Perfetto), the sorted
// JSONL span listing, and the human-readable critical-path report.
type TraceBundle struct {
	ChromeJSON []byte
	JSONL      []byte
	Report     string
}

// CaptureTrace runs the Figure-3 paper query on a traced system and
// returns the exported trace (the `sqpeer-bench -trace` payload).
func CaptureTrace() *TraceBundle {
	tracer, _, _, _ := tracedAsk(20)
	var rep strings.Builder
	for _, tr := range tracer.Traces() {
		if att := obs.Analyze(tr, 2); att != nil {
			rep.WriteString(att.String())
		}
	}
	return &TraceBundle{
		ChromeJSON: tracer.TraceEventJSON(),
		JSONL:      tracer.JSONL(),
		Report:     rep.String(),
	}
}
