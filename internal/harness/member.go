package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"

	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/membership"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/routing"
)

func init() {
	register("member", "CLAIM-MEMBER: decentralized membership — failure detection, anti-entropy convergence, partition healing", claimMember)
}

// memberBench is the machine-readable artifact (BENCH_PR9.json).
type memberBench struct {
	Seed int64 `json:"seed"`
	// Bootstrap: rounds until every peer's routing view equals the
	// oracle registry, starting from contact-only knowledge.
	JoinRounds int `json:"joinRounds"`
	JoinBound  int `json:"joinBound"`
	// Churn phase: scripted crashes under 10% message faults.
	Crashes          int     `json:"crashes"`
	MaxDetectRounds  int     `json:"maxDetectRounds"`
	DetectBound      int     `json:"detectBound"`
	ChurnQueries     int     `json:"churnQueries"`
	ChurnCompleted   int     `json:"churnCompleted"`
	ChurnSuccessRate float64 `json:"churnSuccessRate"`
	QuiesceRounds    int     `json:"quiesceRounds"`
	// Partition phase.
	PartitionQueries   int  `json:"partitionQueries"`
	PartitionCompleted int  `json:"partitionCompleted"`
	PartitionPartial   int  `json:"partitionPartial"`
	WrongRows          int  `json:"wrongRows"`
	BothSidesDetected  bool `json:"bothSidesDetected"`
	// Heal phase.
	HealRounds       int  `json:"healRounds"`
	HealBound        int  `json:"healBound"`
	ViewsEqualOracle bool `json:"viewsEqualOracle"`
	AnswerRestored   bool `json:"answerRestored"`
	// Determinism.
	Digest        string `json:"digest"`
	Deterministic bool   `json:"deterministic"`
}

// memberRun is one seeded pass of the full scenario.
type memberRun struct {
	joinRounds     int
	crashes        int
	maxDetect      int
	undetected     int
	churnQueries   int
	churnCompleted int
	quiesceRounds  int
	partQueries    int
	partCompleted  int
	partPartial    int
	partAnnotated  int
	wrongRows      int
	bothDetected   bool
	healRounds     int
	viewsEqual     bool
	answerRestored bool
	digest         uint64
}

// Documented logical-clock bounds (DESIGN.md §14): with n peers each
// ticking once per round, a crash is suspected within one probe-ring
// pass and confirmed SuspectTicks later; gossip and per-round
// anti-entropy propagate the verdict, and in practice the parallel
// probing keeps detection far below the single-prober worst case.
const (
	memberPeers       = 10 // providers (5 per partition side)
	memberSuspect     = 2
	memberJoinBound   = 12
	memberDetectBound = 10
	memberHealBound   = 20
)

// claimMember runs the decentralized-membership claim: peers build and
// maintain routing views with no shared oracle — bootstrap converges in
// bounded rounds, scripted crashes under 10% message faults are
// confirmed dead within the documented bound, a partition degrades
// queries to annotated partial answers with zero wrong rows, and after
// the heal the anti-entropy pass provably reconverges every view to
// equality with the ground-truth registry. Same-seed reruns are
// byte-identical and the run leaks no goroutines.
func claimMember() *Report {
	r := &Report{ID: "member", Title: "CLAIM-MEMBER: decentralized membership — failure detection, anti-entropy convergence, partition healing", Pass: true}

	grBefore := runtime.NumGoroutine()
	run := runMemberScenario(memberSeed)
	rerun := runMemberScenario(memberSeed)
	deterministic := run.digest == rerun.digest

	r.linef("  bootstrap: %d peers converged to oracle views in %d rounds (bound %d)",
		memberPeers, run.joinRounds, memberJoinBound)
	r.linef("  churn+10%% faults: %d crashes, max detect latency %d rounds (bound %d), %d/%d queries completed",
		run.crashes, run.maxDetect, memberDetectBound, run.churnCompleted, run.churnQueries)
	r.linef("  quiescence: views re-equal to oracle %d rounds after churn", run.quiesceRounds)
	r.linef("  partition: %d/%d queries completed (%d partial, %d wrong rows), both sides detected=%v",
		run.partCompleted, run.partQueries, run.partPartial, run.wrongRows, run.bothDetected)
	r.linef("  heal: reconverged in %d rounds (bound %d), views==oracle=%v, answer restored=%v",
		run.healRounds, memberHealBound, run.viewsEqual, run.answerRestored)
	r.linef("  digest=%016x rerun=%016x", run.digest, rerun.digest)

	r.check("bootstrap converges to oracle-equal views within the documented bound",
		run.joinRounds > 0 && run.joinRounds <= memberJoinBound)
	r.check("every scripted crash confirmed dead within the documented bound",
		run.crashes > 0 && run.undetected == 0 && run.maxDetect <= memberDetectBound)
	r.check("≥95% of queries complete during churn at 10% faults",
		float64(run.churnCompleted) >= 0.95*float64(run.churnQueries))
	r.check("≥95% of mid-partition queries complete", float64(run.partCompleted) >= 0.95*float64(run.partQueries))
	r.check("partition answers are completeness-annotated partial answers",
		run.partPartial > 0 && run.partAnnotated == run.partPartial)
	r.check("zero wrong rows during the partition", run.wrongRows == 0)
	r.check("partition detected on both sides (suspicion timeouts, no shared state)", run.bothDetected)
	r.check("post-heal anti-entropy reconverges all views within the documented bound",
		run.healRounds > 0 && run.healRounds <= memberHealBound)
	r.check("after quiescence every peer's routing view equals the oracle registry", run.viewsEqual)
	r.check("post-heal answers recover the fault-free row set", run.answerRestored)
	r.check("same-seed reruns byte-identical", deterministic)

	// The detectors are goroutine-free by construction (Tick-driven); the
	// soak must not leak engine or channel goroutines either.
	leaked := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= grBefore+2 {
			break
		}
		runtime.Gosched()
		if i == 99 {
			leaked = true
		}
	}
	r.check("no goroutine leak across the soak", !leaked)

	bench := memberBench{
		Seed:               memberSeed,
		JoinRounds:         run.joinRounds,
		JoinBound:          memberJoinBound,
		Crashes:            run.crashes,
		MaxDetectRounds:    run.maxDetect,
		DetectBound:        memberDetectBound,
		ChurnQueries:       run.churnQueries,
		ChurnCompleted:     run.churnCompleted,
		ChurnSuccessRate:   float64(run.churnCompleted) / float64(run.churnQueries),
		QuiesceRounds:      run.quiesceRounds,
		PartitionQueries:   run.partQueries,
		PartitionCompleted: run.partCompleted,
		PartitionPartial:   run.partPartial,
		WrongRows:          run.wrongRows,
		BothSidesDetected:  run.bothDetected,
		HealRounds:         run.healRounds,
		HealBound:          memberHealBound,
		ViewsEqualOracle:   run.viewsEqual,
		AnswerRestored:     run.answerRestored,
		Digest:             fmt.Sprintf("%016x", run.digest),
		Deterministic:      deterministic,
	}
	if blob, err := json.MarshalIndent(bench, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR9.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR9.json", false)
	}
	return r
}

// memberSystem is the scenario fixture: a hardened client root P0 and
// ten providers — group A (VA*) holding prop1, group B (VB*) holding
// prop2 — every peer running its own detector, bootstrapped through P0
// only. The oracle registry is the ablation twin: the same
// advertisements registered directly, no network.
type memberSystem struct {
	net       *network.Network
	root      *peer.Peer
	peers     map[pattern.PeerID]*peer.Peer
	providers []pattern.PeerID // sorted
	sideA     []pattern.PeerID
	sideB     []pattern.PeerID
	oracle    *routing.Registry
}

func newMemberSystem(seed int64) *memberSystem {
	schema := gen.PaperSchema()
	net := network.New()
	s := &memberSystem{net: net, peers: map[pattern.PeerID]*peer.Peer{}}
	mopts := func() *membership.Options {
		return &membership.Options{Seed: seed, DeadlineMS: 200,
			SuspectTicks: memberSuspect, IndirectProbes: 2, DeadRetryTicks: 2}
	}
	root, err := peer.New(peer.Config{ID: "P0", Kind: peer.ClientPeer, Schema: schema,
		Parallelism: 1, DeadlineMS: 200, MaxRetries: 3,
		AllowPartial: true, Quarantine: true, Membership: mopts()}, net)
	if err != nil {
		panic(err)
	}
	s.root = root
	s.peers["P0"] = root
	s.oracle = routing.NewIndexedRegistry(schema)
	for i := 0; i < memberPeers; i++ {
		var id pattern.PeerID
		prop := "prop1"
		if i < memberPeers/2 {
			id = pattern.PeerID(fmt.Sprintf("VA%d", i))
			s.sideA = append(s.sideA, id)
		} else {
			id = pattern.PeerID(fmt.Sprintf("VB%d", i-memberPeers/2))
			s.sideB = append(s.sideB, id)
			prop = "prop2"
		}
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema,
			Base: roleBase(string(id), 2, prop), Parallelism: 1, DeadlineMS: 200,
			Membership: mopts()}, net)
		if err != nil {
			panic(err)
		}
		s.peers[id] = p
		s.providers = append(s.providers, id)
		s.oracle.Register(id, p.Active)
	}
	sort.Slice(s.providers, func(i, j int) bool { return s.providers[i] < s.providers[j] })
	// Bootstrap: every provider knows only the contact P0; views grow
	// through the membership plane alone (no Learn, no PushAdvertisement).
	for _, id := range s.providers {
		_ = s.peers[id].Membership.Join("P0")
	}
	return s
}

// tick drives one protocol round on every live peer (sorted order, for
// deterministic RNG and injector draws) plus the root's breaker clock.
func (s *memberSystem) tick() {
	ids := append([]pattern.PeerID{"P0"}, s.providers...)
	for _, id := range ids {
		if !s.net.IsDown(id) {
			s.peers[id].Membership.Tick()
		}
	}
	s.root.Health.Tick()
}

// viewFingerprint renders a registry's verdict on every provider:
// present/quarantined plus the advertised active-schema bytes. Two equal
// fingerprints mean equal routing views.
func viewFingerprint(reg *routing.Registry, providers []pattern.PeerID) string {
	out := ""
	for _, id := range providers {
		as, ok := reg.Get(id)
		switch {
		case !ok:
			out += string(id) + ":missing;"
		case reg.IsQuarantined(id):
			out += string(id) + ":quarantined;"
		default:
			blob, err := json.Marshal(as)
			if err != nil {
				out += string(id) + ":unmarshalable;"
				continue
			}
			out += string(id) + ":" + string(blob) + ";"
		}
	}
	return out
}

// viewsEqualOracle reports whether every live peer's registry (root
// included) matches the oracle on the provider set.
func (s *memberSystem) viewsEqualOracle() bool {
	want := viewFingerprint(s.oracle, s.providers)
	ids := append([]pattern.PeerID{"P0"}, s.providers...)
	for _, id := range ids {
		if s.net.IsDown(id) {
			continue
		}
		if viewFingerprint(s.peers[id].Registry, s.providers) != want {
			return false
		}
	}
	return true
}

// runMemberScenario executes the four-phase scenario for one seed.
func runMemberScenario(seed int64) memberRun {
	s := newMemberSystem(seed)
	h := fnv.New64a()
	var out memberRun

	// Phase 1 — bootstrap convergence from contact-only knowledge.
	for round := 1; round <= memberJoinBound; round++ {
		s.tick()
		if s.viewsEqualOracle() {
			out.joinRounds = round
			break
		}
	}
	fmt.Fprintf(h, "join:%d\n", out.joinRounds)
	baselineRes, err := s.root.Ask(gen.PaperRQL)
	if err != nil {
		panic(fmt.Sprintf("member baseline query: %v", err))
	}
	baseline := baselineRes.Sorted()
	baselineSet := map[string]bool{}
	for _, row := range baseline {
		baselineSet[row] = true
	}
	fmt.Fprintf(h, "baseline:%v\n", baseline)

	// Phase 2 — seeded churn under 10% message faults. Crashes last
	// longer than the detection bound so every one is confirmable; a
	// restarting peer calls Rejoin (incarnation bump), nothing else — no
	// scripted re-advertisement.
	const churnRounds = 30
	inj := faults.NewInjector(seed, faults.Rates{
		Drop: 1, Duplicate: 1, DelaySpike: 1, SpikeMS: 300,
	}.Scaled(0.10))
	s.net.SetInjector(inj)
	sched := faults.NewSchedule(seed, "P0", s.providers, churnRounds, faults.ScheduleRates{
		Crash: 0.05, CrashLen: memberDetectBound + 2,
	})
	crashRound := map[pattern.PeerID]int{}
	detected := map[pattern.PeerID]bool{}
	for round := 0; round < churnRounds; round++ {
		eff := sched.Apply(round, s.net, inj)
		for _, id := range eff.Crashed {
			out.crashes++
			crashRound[id] = round
			detected[id] = false
		}
		for _, id := range eff.Restarted {
			s.peers[id].Membership.Rejoin()
			delete(crashRound, id)
		}
		s.tick()
		// Detection check: the root's verdict on every still-down victim.
		for _, id := range s.providers {
			start, down := crashRound[id]
			if !down || detected[id] {
				continue
			}
			if st, _ := s.root.Membership.StatusOf(id); st == membership.StatusDead {
				detected[id] = true
				if lat := round - start + 1; lat > out.maxDetect {
					out.maxDetect = lat
				}
			}
		}
		out.churnQueries++
		res, err := s.root.AskAnnotated(gen.PaperRQL)
		switch {
		case err != nil:
			fmt.Fprintf(h, "churn %d:error\n", round)
		case res.Completeness.Complete:
			out.churnCompleted++
			fmt.Fprintf(h, "churn %d:full:%v\n", round, res.Rows.Sorted())
		default:
			out.churnCompleted++
			fmt.Fprintf(h, "churn %d:partial:%v\n", round, res.Rows.Sorted())
		}
	}
	for _, id := range s.providers {
		ok, tracked := detected[id]
		if _, stillDown := crashRound[id]; tracked && !ok && stillDown {
			out.undetected++
			fmt.Fprintf(h, "undetected:%s\n", id)
		}
	}
	// Quiesce: lift the injector, restart any still-down peer, and let
	// anti-entropy re-equalize every view with the oracle.
	s.net.SetInjector(nil)
	for _, id := range s.providers {
		if s.net.IsDown(id) {
			s.net.Recover(id)
			s.peers[id].Membership.Rejoin()
		}
	}
	for round := 1; round <= memberHealBound; round++ {
		s.tick()
		if s.viewsEqualOracle() {
			out.quiesceRounds = round
			break
		}
	}
	fmt.Fprintf(h, "quiesce:%d\n", out.quiesceRounds)

	// Phase 3 — a held partition: group B (every prop2 provider) is cut
	// from the root side. Queries keep flowing and must degrade to
	// completeness-annotated partial answers with zero wrong rows, while
	// suspicion timeouts fire on BOTH sides of the cut.
	rootSide := append([]pattern.PeerID{"P0"}, s.sideA...)
	for _, a := range rootSide {
		for _, b := range s.sideB {
			s.net.Partition(a, b)
		}
	}
	const partRounds = 12
	for round := 0; round < partRounds; round++ {
		s.tick()
		out.partQueries++
		res, err := s.root.AskAnnotated(gen.PaperRQL)
		switch {
		case err != nil:
			fmt.Fprintf(h, "part %d:error\n", round)
		case res.Completeness.Complete:
			out.partCompleted++
			fmt.Fprintf(h, "part %d:full:%v\n", round, res.Rows.Sorted())
		default:
			out.partCompleted++
			out.partPartial++
			if len(res.Completeness.Unanswered) > 0 {
				out.partAnnotated++
			}
			for _, row := range res.Rows.Sorted() {
				if !baselineSet[row] {
					out.wrongRows++
				}
			}
			fmt.Fprintf(h, "part %d:partial:%v\n", round, res.Rows.Sorted())
		}
	}
	aSeesB, _ := s.root.Membership.StatusOf(s.sideB[0])
	bSeesRoot, _ := s.peers[s.sideB[0]].Membership.StatusOf("P0")
	bSeesA, _ := s.peers[s.sideB[0]].Membership.StatusOf(s.sideA[0])
	out.bothDetected = aSeesB == membership.StatusDead &&
		bSeesRoot == membership.StatusDead && bSeesA == membership.StatusDead
	fmt.Fprintf(h, "part detected:%v\n", out.bothDetected)

	// Phase 4 — heal: no scripted rejoin anywhere. Dead-retry probes
	// rediscover the far side (the probe carries "you are dead at
	// incarnation i", the live target refutes at i+1) and anti-entropy
	// reconverges every view within the documented bound.
	for _, a := range rootSide {
		for _, b := range s.sideB {
			s.net.Heal(a, b)
		}
	}
	for round := 1; round <= memberHealBound; round++ {
		s.tick()
		if s.viewsEqualOracle() {
			out.healRounds = round
			break
		}
	}
	out.viewsEqual = s.viewsEqualOracle()
	restoredRes, err := s.root.Ask(gen.PaperRQL)
	if err == nil {
		restored := restoredRes.Sorted()
		out.answerRestored = len(restored) == len(baseline)
		for i := range restored {
			if out.answerRestored && restored[i] != baseline[i] {
				out.answerRestored = false
			}
		}
	}
	fmt.Fprintf(h, "heal:%d views:%v restored:%v\n", out.healRounds, out.viewsEqual, out.answerRestored)

	out.digest = h.Sum64()
	return out
}
