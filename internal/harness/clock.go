// Wall-clock throughput measurement for harness reports. Experiment
// *results* (answers, annotations, message counts) are a function of the
// simulated logical clock only; the sole thing the harness may take from
// the wall clock is how fast this host churned through repetitions,
// which it prints for scale and never asserts on. That read is funneled
// through this file so the walltime analyzer's allowlist has exactly one
// entry for the harness.
package harness

import (
	"time"

	"sqpeer/internal/obs"
)

// benchReg funnels every harness wall-clock microbenchmark into one obs
// histogram (harness_bench_us, labeled by bench id): figure reports read
// their throughput numbers back from the registry, the same path
// production metrics take, instead of keeping bespoke floats.
var benchReg = obs.NewRegistry()

// benchObserve records one microbenchmark observation (microseconds per
// operation) and returns its histogram for reporting.
func benchObserve(bench string, us float64) *obs.Histogram {
	h := benchReg.Histogram("harness_bench_us", obs.L("bench", bench))
	h.Observe(us)
	return h
}

// ObserveBenchAlloc records a microbenchmark's allocation cost into the
// registry (harness_bench_allocs_per_op, harness_bench_bytes_per_op,
// labeled by bench id) and returns the registry means, so reports and
// artifacts read allocation numbers back the same way they read
// throughput. Exported for cmd/sqpeer-bench, whose Fig benches feed the
// same registry.
func ObserveBenchAlloc(bench string, allocsPerOp, bytesPerOp float64) (meanAllocs, meanBytes float64) {
	a := benchReg.Histogram("harness_bench_allocs_per_op", obs.L("bench", bench))
	a.Observe(allocsPerOp)
	b := benchReg.Histogram("harness_bench_bytes_per_op", obs.L("bench", bench))
	b.Observe(bytesPerOp)
	return a.Mean(), b.Mean()
}

// Clock measures elapsed wall time for throughput reporting.
type Clock struct {
	start time.Time
}

// StartClock begins a wall-clock measurement.
func StartClock() Clock {
	//lint:allow walltime the one sanctioned harness wall-clock read: throughput reporting, never results
	return Clock{start: time.Now()}
}

// Seconds returns the elapsed wall time in seconds.
func (c Clock) Seconds() float64 {
	//lint:allow walltime paired elapsed read for StartClock
	return time.Since(c.start).Seconds()
}

// Microseconds returns the elapsed wall time in microseconds.
func (c Clock) Microseconds() float64 {
	//lint:allow walltime paired elapsed read for StartClock
	return float64(time.Since(c.start).Microseconds())
}
