package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"sqpeer/internal/exec"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
)

func init() {
	register("recover", "CLAIM-RECOVER: mid-flight subplan migration vs full restart — checkpointed recovery (§2.4/§2.5)", claimRecover)
}

// recoverBench is the machine-readable artifact (BENCH_PR4.json).
type recoverBench struct {
	Seed       int64             `json:"seed"`
	Controlled []recoverModeRun  `json:"controlled"`
	Sweep      recoverSweepPoint `json:"sweepAt10pct"`
}

// recoverModeRun is one controlled-scenario pass in one recovery mode.
type recoverModeRun struct {
	Mode             string `json:"mode"` // "migrate" or "restart"
	AnswerRows       int    `json:"answerRows"`
	AnswerDigest     string `json:"answerDigest"`
	Migrations       int    `json:"migrations"`
	Replans          int    `json:"replans"`
	Retries          int    `json:"retries"`
	RowsFetched      int    `json:"rowsFetched"`      // all completed remote fetches
	RowsFetchedFinal int    `json:"rowsFetchedFinal"` // fetches feeding the final answer
	RowsRefetched    int    `json:"rowsRefetched"`
	RowsRetained     int    `json:"rowsRetained"`
	RowsDiscarded    int    `json:"rowsDiscarded"`
	DuplicateFetches int    `json:"duplicateFetches"` // same (site, patterns) completed twice
}

// recoverSweepPoint compares both modes over the PR-2 stochastic fault
// schedule at one rate.
type recoverSweepPoint struct {
	Rate               float64 `json:"faultRate"`
	MigrateRefetched   int     `json:"migrateRefetched"`
	RestartRefetched   int     `json:"restartRefetched"`
	MigrateMigrations  int     `json:"migrateMigrations"`
	RestartReplans     int     `json:"restartReplans"`
	MigrateSuccessRate float64 `json:"migrateSuccessRate"`
	RestartSuccessRate float64 `json:"restartSuccessRate"`
	Deterministic      bool    `json:"deterministic"`
}

// runRecoverControlled executes the controlled scenario in one recovery
// mode: P4 crashes after its first result packet of a 1-row-per-packet
// stream, mid-query. With migration enabled the engine re-dispatches only
// P4's subtrees; with exec.NoMigrations it discards and restarts.
func runRecoverControlled(mode string, maxMigrations int) recoverModeRun {
	peers, net := paperSystem(3)
	p1 := peers["P1"]
	p1.Engine.Parallelism = 1
	p1.Engine.MaxRetries = 1
	p1.Engine.BatchSize = 1
	p1.Engine.MaxMigrations = maxMigrations
	net.SetInjector(faults.NewScript(&faults.ScriptRule{
		From: "P4", Kind: "chan.packet", After: 1,
		Fault: network.Fault{Drop: true},
	}))
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		panic(err)
	}
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		panic(fmt.Sprintf("recover: %s mode failed: %v", mode, err))
	}
	m := p1.Engine.Metrics()
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", rows.Sorted())

	out := recoverModeRun{
		Mode: mode, AnswerRows: rows.Len(),
		AnswerDigest: fmt.Sprintf("%016x", h.Sum64()),
		Migrations:   m.Migrations, Replans: m.Replans, Retries: m.Retries,
		RowsRefetched: m.RowsRefetched, RowsRetained: m.RowsRetained,
		RowsDiscarded: m.RowsDiscarded,
	}
	// Ledger reconciliation: every completed remote fetch, keyed by
	// (site, patterns). A key completed twice is a duplicate fetch — the
	// exactly-once violation the checkpoint protocol exists to prevent.
	seen := map[string]bool{}
	lastAttempt := 0
	for _, le := range p1.Engine.Ledger() {
		if le.Outcome == "complete" && le.Attempt > lastAttempt {
			lastAttempt = le.Attempt
		}
	}
	for _, le := range p1.Engine.Ledger() {
		if le.Outcome != "complete" {
			continue
		}
		out.RowsFetched += le.Rows
		if le.Attempt == lastAttempt {
			out.RowsFetchedFinal += le.Rows
		}
		key := string(le.Site) + "\x00" + le.Patterns
		if seen[key] {
			out.DuplicateFetches++
		}
		seen[key] = true
	}
	return out
}

// claimRecover validates the plan-change protocol end to end.
//
// Controlled scenario (deterministic, same crash in both modes): the
// migrated answer must be byte-identical to the from-scratch restart's,
// with exactly-once accounting — the migration run fetches each (site,
// subplan) once, retained + migrated fetches equal the restart's final
// round, and nothing is fetched twice. Sweep scenario: under the PR-2
// stochastic schedule at a 10% fault rate, migration re-fetches strictly
// fewer rows than the restart ablation, with both modes same-seed
// deterministic.
func claimRecover() *Report {
	r := &Report{ID: "recover", Title: "CLAIM-RECOVER: mid-flight subplan migration vs full restart — checkpointed recovery (§2.4/§2.5)", Pass: true}
	const (
		seed   = 20240805
		rounds = 30
		rate   = 0.1
	)
	bench := recoverBench{Seed: seed}

	// Part A: controlled mid-stream crash, migration vs restart ablation.
	mig := runRecoverControlled("migrate", 0)
	rst := runRecoverControlled("restart", exec.NoMigrations)
	bench.Controlled = []recoverModeRun{mig, rst}
	r.linef("  controlled crash (P4 dies after 1 of 3 result rows):")
	r.linef("  %-8s %6s %6s %8s %8s %10s %10s %8s", "mode", "rows", "migr", "replans", "fetched", "refetched", "retained", "dupes")
	for _, m := range bench.Controlled {
		r.linef("  %-8s %6d %6d %8d %8d %10d %10d %8d",
			m.Mode, m.AnswerRows, m.Migrations, m.Replans, m.RowsFetched,
			m.RowsRefetched, m.RowsRetained, m.DuplicateFetches)
	}
	r.check("(a) migration yields the identical final answer as a from-scratch restart",
		mig.AnswerDigest == rst.AnswerDigest && mig.AnswerRows == rst.AnswerRows)
	r.check("migration mode migrates without replanning; ablation replans without migrating",
		mig.Migrations > 0 && mig.Replans == 0 && rst.Migrations == 0 && rst.Replans > 0)
	r.check("(b) exactly-once: retained + migrated fetches equal the restart's final round",
		mig.RowsFetched == rst.RowsFetchedFinal)
	r.check("(b) exactly-once: no (site, subplan) fetched twice, nothing refetched under migration",
		mig.DuplicateFetches == 0 && mig.RowsRefetched == 0)
	r.check("restart pays for the crash by refetching completed siblings",
		rst.RowsRefetched > 0 && rst.RowsFetched > mig.RowsFetched)

	// Part B: the PR-2 stochastic schedule at 10%, both modes, same seed.
	migRun := runFaultPoint(seed, rounds, rate, 0)
	migRerun := runFaultPoint(seed, rounds, rate, 0)
	rstRun := runFaultPoint(seed, rounds, rate, exec.NoMigrations)
	rstRerun := runFaultPoint(seed, rounds, rate, exec.NoMigrations)
	pt := recoverSweepPoint{
		Rate:              rate,
		MigrateRefetched:  migRun.refetched,
		RestartRefetched:  rstRun.refetched,
		MigrateMigrations: migRun.migrations,
		RestartReplans:    rstRun.replans,
		MigrateSuccessRate: float64(migRun.full+migRun.partial) /
			float64(rounds),
		RestartSuccessRate: float64(rstRun.full+rstRun.partial) /
			float64(rounds),
		Deterministic: migRun.digest == migRerun.digest && rstRun.digest == rstRerun.digest,
	}
	bench.Sweep = pt
	r.linef("  stochastic sweep at %.0f%% fault rate, %d rounds:", rate*100, rounds)
	r.linef("  migrate: refetched=%d migrations=%d replans=%d success=%.0f%%",
		migRun.refetched, migRun.migrations, migRun.replans, pt.MigrateSuccessRate*100)
	r.linef("  restart: refetched=%d migrations=%d replans=%d success=%.0f%%",
		rstRun.refetched, rstRun.migrations, rstRun.replans, pt.RestartSuccessRate*100)
	r.check("(c) migration re-fetches strictly fewer rows than restart at 10% fault rate",
		pt.MigrateRefetched < pt.RestartRefetched)
	r.check("migration machinery exercised under the stochastic schedule",
		migRun.migrations > 0)
	r.check("ablation performs no migrations", rstRun.migrations == 0)
	r.check("same-seed reruns byte-identical in both modes", pt.Deterministic)
	r.check("migration does not hurt completion rate",
		pt.MigrateSuccessRate >= pt.RestartSuccessRate)

	if blob, err := json.MarshalIndent(bench, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR4.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR4.json", false)
	}
	return r
}
