package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"sqpeer/internal/admission"
	"sqpeer/internal/faults"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/routing"
)

func init() {
	register("overload", "CLAIM-OVERLOAD: multi-tenant admission, priority shedding and hot-advertisement replication under 2× sustained overload (§13)", claimOverload)
}

// Overload workload shape: six tenants in three priority classes, drawn
// per round from a seeded Zipf so demand is skewed the way real tenant
// populations are. Rank order puts the chattiest tenant in the cheapest
// class — the configuration admission control exists for.
var overloadTenants = []struct {
	name string
	prio admission.Priority
}{
	{"bronze-0", admission.Low},
	{"gold", admission.High},
	{"silver", admission.Normal},
	{"bronze-1", admission.Low},
	{"bronze-2", admission.Low},
	{"bronze-3", admission.Low},
}

// overloadSweep is the machine-readable artifact (BENCH_PR7.json).
type overloadSweep struct {
	Seed           int64               `json:"seed"`
	Rounds         int                 `json:"rounds"`
	Smoke          bool                `json:"smoke,omitempty"`
	FaultRate      float64             `json:"faultRate"`
	OverloadFactor float64             `json:"overloadFactor"`
	Tenants        []overloadTenantRow `json:"tenants"`

	GoldP99MS         float64 `json:"goldP99Ms"`
	GoldBaselineP99MS float64 `json:"goldBaselineP99Ms"`
	GoldP99Ratio      float64 `json:"goldP99Ratio"`

	Shed              int     `json:"shed"`
	OverloadRejected  int     `json:"overloadRejected"`
	Migrations        int     `json:"migrations"`
	RetryAfterHonored int     `json:"retryAfterHonored"`
	ShedSurfaced      int     `json:"shedSurfaced"`
	BareTimeouts      int     `json:"bareTimeouts"`
	SurfacedRatio     float64 `json:"surfacedRatio"`

	Replications  int     `json:"replications"`
	FairnessJain  float64 `json:"fairnessJain"`
	Digest        string  `json:"digest"`
	Deterministic bool    `json:"deterministic"`

	AblationAnswersEqual bool `json:"ablationAnswersEqual"`
	GoroutineLeak        int  `json:"goroutineLeak"`
}

// overloadTenantRow is one tenant's ledger over the loaded pass.
type overloadTenantRow struct {
	Tenant       string `json:"tenant"`
	Priority     string `json:"priority"`
	Offered      int    `json:"offered"`
	Admitted     int    `json:"admitted"`
	RejectedRate int    `json:"rejectedRate"`
	RejectedLoad int    `json:"rejectedLoad"`
	Full         int    `json:"full"`
	Partial      int    `json:"partial"`
	Failed       int    `json:"failed"`
}

// overloadRun is one seeded pass over the overload fixture.
type overloadRun struct {
	rows      map[string]*overloadTenantRow
	goldLats  []float64
	digest    uint64
	fairness  float64
	occupancy int // peak root occupancy observed

	shed, overloadRejected     int
	migrations, honoredRetries int
	shedHoles, timeoutHoles    int
	bareTimeouts               int
	replications               int
	factor                     float64 // measured offered demand / capacity
	answers                    uint64  // digest over row sets only (for the ablation)
}

// overloadCfg bundles one pass's knobs.
type overloadCfg struct {
	seed      int64
	rounds    int
	stepMS    float64 // logical think time between queries: the load axis
	faultRate float64
	disabled  bool // ablation: admission pass-through everywhere
	goldOnly  bool // baseline: only the High tenant, no competing load
	replicate bool // mid-run hot-advertisement rebalance
	bursts    bool // concurrent gold arrivals at the root (goldBurst)
	rateFair  bool // rate-bound pass: buckets bind, occupancy unlimited
}

// claimOverload puts the multi-tenant serving layer under 2× sustained
// overload with a 10% fault mix and checks the §13 contract: the system
// neither deadlocks nor leaks, high-priority latency stays within 1.5×
// of its unloaded baseline, shed work surfaces as completeness holes or
// completed migrations (never bare timeouts), same-seed reruns are
// byte-identical, and disabling admission (the ablation) changes which
// queries wait, not what any query answers.
func claimOverload() *Report {
	r := &Report{ID: "overload", Title: "CLAIM-OVERLOAD: multi-tenant admission, priority shedding and hot-advertisement replication under 2× sustained overload (§13)", Pass: true}
	rounds := 400
	if testing.Testing() {
		rounds = 80
	}
	const (
		seed      = overloadSeed
		stepMS    = 40.0 // offered: one query per 40 logical ms
		faultRate = 0.10
	)

	goroutinesBefore := runtime.NumGoroutine()

	// Loaded pass and its determinism rerun; the unloaded gold baseline
	// and the fault-free ablation pair run at calmStep — wide enough that
	// even Low-watermark occupancy never binds, so those passes measure
	// the system, not residual contention. The fairness pass flips the
	// binding constraint to the per-tenant buckets.
	const calmStep = 96 * stepMS
	loaded := runOverloadPass(overloadCfg{seed: seed, rounds: rounds, stepMS: stepMS, faultRate: faultRate, replicate: true, bursts: true})
	rerun := runOverloadPass(overloadCfg{seed: seed, rounds: rounds, stepMS: stepMS, faultRate: faultRate, replicate: true, bursts: true})
	baseline := runOverloadPass(overloadCfg{seed: seed, rounds: rounds, stepMS: calmStep, faultRate: faultRate, goldOnly: true})
	enabledCalm := runOverloadPass(overloadCfg{seed: seed, rounds: rounds / 2, stepMS: calmStep})
	ablation := runOverloadPass(overloadCfg{seed: seed, rounds: rounds / 2, stepMS: calmStep, disabled: true})
	fair := runOverloadPass(overloadCfg{seed: seed, rounds: rounds, stepMS: 8 * stepMS, rateFair: true})

	sweep := overloadSweep{
		Seed: seed, Rounds: rounds, Smoke: testing.Testing(), FaultRate: faultRate,
		GoldP99MS:         p99(loaded.goldLats),
		GoldBaselineP99MS: p99(baseline.goldLats),
		Shed:              loaded.shed,
		OverloadRejected:  loaded.overloadRejected,
		Migrations:        loaded.migrations,
		RetryAfterHonored: loaded.honoredRetries,
		ShedSurfaced:      loaded.shedHoles + loaded.migrations,
		BareTimeouts:      loaded.bareTimeouts + loaded.timeoutHoles,
		Replications:      loaded.replications,
		FairnessJain:      fair.fairness,
		Digest:            fmt.Sprintf("%016x", loaded.digest),
		Deterministic:     loaded.digest == rerun.digest,
		AblationAnswersEqual: enabledCalm.answers == ablation.answers,
	}
	if sweep.GoldBaselineP99MS > 0 {
		sweep.GoldP99Ratio = sweep.GoldP99MS / sweep.GoldBaselineP99MS
	}
	if surfacedDenom := sweep.ShedSurfaced + sweep.BareTimeouts; surfacedDenom > 0 {
		sweep.SurfacedRatio = float64(sweep.ShedSurfaced) / float64(surfacedDenom)
	} else {
		sweep.SurfacedRatio = 1
	}
	sweep.OverloadFactor = loaded.factor

	for _, t := range overloadTenants {
		row := loaded.rows[t.name]
		sweep.Tenants = append(sweep.Tenants, *row)
		r.linef("  %-9s %-6s offered %4d  admitted %4d  rej-rate %3d  rej-load %3d  full %4d  partial %3d  failed %2d",
			row.Tenant, row.Priority, row.Offered, row.Admitted, row.RejectedRate, row.RejectedLoad,
			row.Full, row.Partial, row.Failed)
	}
	r.linef("  gold p99 %.0fms (baseline %.0fms, ratio %.2f×)  shed %d  rejected %d  migrations %d  retry-hints %d",
		sweep.GoldP99MS, sweep.GoldBaselineP99MS, sweep.GoldP99Ratio,
		sweep.Shed, sweep.OverloadRejected, sweep.Migrations, sweep.RetryAfterHonored)
	r.linef("  shed surfaced %d / bare timeouts %d (ratio %.3f)  replications %d  fairness %.3f  factor %.1f×",
		sweep.ShedSurfaced, sweep.BareTimeouts, sweep.SurfacedRatio,
		sweep.Replications, sweep.FairnessJain, sweep.OverloadFactor)

	runtime.GC()
	sweep.GoroutineLeak = runtime.NumGoroutine() - goroutinesBefore

	r.check("sustained overload applied (≥2× root capacity, facade rejections and sheds observed)",
		sweep.OverloadFactor >= 2 && sweep.OverloadRejected+overloadRejections(loaded) > 0 && sweep.Shed > 0)
	r.check("high-priority p99 within 1.5× of the unloaded baseline", sweep.GoldP99Ratio > 0 && sweep.GoldP99Ratio <= 1.5)
	r.check("≥95% of shed/overloaded subplans surface as holes or completed migrations (never bare timeouts)",
		sweep.SurfacedRatio >= 0.95)
	r.check("retry-after hints honored under overload", sweep.RetryAfterHonored > 0)
	r.check("hot-advertisement replication rebalanced at least one advertisement", sweep.Replications > 0)
	r.check("rate-bound fairness: Jain over bronze admitted/entitlement ≥ 0.9", sweep.FairnessJain >= 0.9)
	r.check("same-seed rerun byte-identical", sweep.Deterministic)
	r.check("ablation (admission disabled) leaves every answer unchanged", sweep.AblationAnswersEqual)
	r.check("no goroutine leak across the soak", sweep.GoroutineLeak <= 2)

	if blob, err := json.MarshalIndent(sweep, "", "  "); err == nil {
		r.ArtifactName = "BENCH_PR7.json"
		r.ArtifactJSON = append(blob, '\n')
	} else {
		r.check("marshal BENCH_PR7.json", false)
	}
	return r
}

// Root and server admission geometry. One query per stepMS, each
// holding a root lease for rootHoldMS, demands rootHoldMS/stepMS
// concurrent slots — 2× the root's pool. Servers are sized so bronze
// work (watermarked to one slot) gets squeezed while gold's full
// allocation rides out the same load.
const (
	rootMaxConcurrent = 6
	rootHoldMS        = 7200.0
	serverConcurrent  = 3
	serverHoldMS      = 150.0
	burstEvery        = 12
	// fairRatePerSec is the per-tenant bucket refill in the rate-bound
	// fairness pass: low enough that the Zipf-hot tenant is capped while
	// cold tenants run uncapped.
	fairRatePerSec = 0.4
)

// goldBurst models concurrent high-priority arrivals at the root peer:
// every `every`-th subplan delivery admits one gold work lease into the
// root controller, mid-flight of whatever query is executing. This is
// the scenario priority shedding exists for — a low query admitted
// under the watermark, then overtaken before its subplans dispatch —
// made deterministic by keying the bursts to the traffic itself. Chains
// to the fault injector so one Intercept sees every delivery.
type goldBurst struct {
	ctl   *admission.Controller
	every int
	n     int
	inner network.Injector
}

func (b *goldBurst) Intercept(m network.Message) network.Fault {
	if m.Kind == "exec.subplan" {
		b.n++
		if b.n%b.every == 0 {
			// Rejection just means the root is already saturated.
			_ = b.ctl.AdmitWork(admission.QoS{Tenant: "gold", Priority: admission.High})
		}
	}
	if b.inner != nil {
		return b.inner.Intercept(m)
	}
	return network.Fault{}
}

// overloadRejections counts facade-level rejections across tenants.
func overloadRejections(run overloadRun) int {
	n := 0
	for _, row := range run.rows {
		n += row.RejectedRate + row.RejectedLoad
	}
	return n
}

// runOverloadPass executes one seeded pass: fresh system, fresh
// injector, cfg.rounds queries drawn from the Zipfian tenant mix, one
// logical stepMS of think time apart. Everything — tenant draws, fault
// schedule, admission decisions, shedding — is a function of cfg.
func runOverloadPass(cfg overloadCfg) overloadRun {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(2)
	net := network.New()
	ids := []pattern.PeerID{"P1", "P2", "P3", "P4"}
	servers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range ids {
		p, err := peer.New(peer.Config{
			ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id], Parallelism: 1,
			Admission: admission.NewController(admission.Config{
				MaxConcurrent: serverConcurrent, HoldMS: serverHoldMS,
				Clock: net.NowMS, Disabled: cfg.disabled,
			}),
		}, net)
		if err != nil {
			panic(err)
		}
		servers[id] = p
	}
	rootCfg := admission.Config{
		RatePerSec: 6, Burst: 2,
		MaxConcurrent: rootMaxConcurrent, HoldMS: rootHoldMS,
		Clock: net.NowMS, Disabled: cfg.disabled,
	}
	if cfg.rateFair {
		// Buckets are the only constraint: unlimited occupancy, tight
		// per-tenant refill, so the invariant under test is each
		// tenant's admitted share against its entitlement.
		rootCfg = admission.Config{RatePerSec: fairRatePerSec, Burst: 1, Clock: net.NowMS}
	}
	rootCtl := admission.NewController(rootCfg)
	p0, err := peer.New(peer.Config{
		ID: "P0", Kind: peer.ClientPeer, Schema: schema,
		Parallelism: 1, DeadlineMS: 300, MaxRetries: 2,
		AllowPartial: true, Quarantine: true,
		Admission: rootCtl,
	}, net)
	if err != nil {
		panic(err)
	}
	for _, id := range ids {
		p0.Learn(servers[id].Advertisement())
	}
	net.ResetCounters()

	var inner network.Injector
	if cfg.faultRate > 0 {
		inner = faults.NewInjector(cfg.seed, faults.Rates{
			Drop: 1, Duplicate: 1, DelaySpike: 1, SpikeMS: 150,
		}.Scaled(cfg.faultRate))
	}
	var burst *goldBurst
	if cfg.bursts {
		burst = &goldBurst{ctl: rootCtl, every: burstEvery, inner: inner}
		net.SetInjector(burst)
	} else if inner != nil {
		net.SetInjector(inner)
	}

	rng := gen.NewRNG(cfg.seed)
	zipf := rand.NewZipf(rng, 1.4, 2, uint64(len(overloadTenants)-1))

	run := overloadRun{rows: map[string]*overloadTenantRow{}}
	for _, t := range overloadTenants {
		run.rows[t.name] = &overloadTenantRow{Tenant: t.name, Priority: t.prio.String()}
	}
	h := fnv.New64a()
	ha := fnv.New64a() // answers only, for the ablation comparison

	for round := 0; round < cfg.rounds; round++ {
		net.AdvanceMS(cfg.stepMS)
		// The servers never crash here — faults are message-level — so
		// their advertisements stay valid: tick the quarantine cool-down
		// and periodically re-learn, the harness's stand-in for the
		// advertisement refresh a live overlay gossips anyway.
		p0.Health.Tick()
		if round%10 == 0 {
			for _, id := range ids {
				p0.Learn(servers[id].Advertisement())
			}
		}
		t := overloadTenants[zipf.Uint64()]
		if cfg.goldOnly {
			t = overloadTenants[1] // gold
		}
		row := run.rows[t.name]
		row.Offered++
		qos := admission.QoS{Tenant: t.name, Priority: t.prio}

		latBefore := net.NowMS()
		backBefore := p0.Engine.Metrics().BackoffMS
		res, err := p0.AskAnnotatedAs(gen.PaperRQL, qos)
		m := p0.Engine.Metrics()
		lat := net.NowMS() - latBefore + (m.BackoffMS - backBefore)

		switch {
		case err != nil:
			var oe *admission.OverloadError
			if errors.As(err, &oe) {
				if oe.Reason == "rate" {
					row.RejectedRate++
				} else {
					row.RejectedLoad++
				}
				fmt.Fprintf(h, "%d:%s:rejected:%s\n", round, t.name, oe.Reason)
			} else {
				row.Failed++
				run.bareTimeouts++
				fmt.Fprintf(h, "%d:%s:error\n", round, t.name)
			}
		default:
			row.Admitted++
			if t.name == "gold" {
				run.goldLats = append(run.goldLats, lat)
			}
			if res.Completeness.Complete {
				row.Full++
			} else {
				row.Partial++
				for _, u := range res.Completeness.Unanswered {
					switch {
					case strings.Contains(u.Reason, "shed") || strings.Contains(u.Reason, "overload"):
						run.shedHoles++
					case strings.Contains(u.Reason, "deadline") || strings.Contains(u.Reason, "timeout"):
						run.timeoutHoles++
					default:
						// Fault-driven holes (dead peers, dropped links):
						// not overload work, not counted either way.
					}
				}
			}
			var unanswered []string
			for _, u := range res.Completeness.Unanswered {
				unanswered = append(unanswered, u.PatternID)
			}
			fmt.Fprintf(h, "%d:%s:%v:%v\n", round, t.name, unanswered, res.Rows.Sorted())
			fmt.Fprintf(ha, "%d:%v\n", round, res.Rows.Sorted())
		}
		if occ := rootCtl.Occupancy(); occ > run.occupancy {
			run.occupancy = occ
		}

		// Mid-run: rebalance the hottest advertisement onto the
		// least-loaded server. Routing demand concentrated by the union
		// fan-out spreads out; answers are sets, so replication never
		// changes them, only who serves.
		if cfg.replicate && round == cfg.rounds/2 {
			run.replications += rebalanceHot(p0, servers)
		}
	}

	m := p0.Engine.Metrics()
	run.shed = m.Shed
	run.migrations = m.Migrations
	run.honoredRetries = m.RetryAfterHonored
	for _, s := range servers {
		run.overloadRejected += s.Engine.Metrics().OverloadRejected
	}
	if cfg.rateFair {
		run.fairness = entitlementJain(run.rows, net.NowMS())
	} else {
		run.fairness = bronzeFairness(run.rows)
	}
	// Measured overload factor: every offered query (admitted or not)
	// plus every gold burst demanded one rootHoldMS lease; capacity is
	// the root's slot pool over the elapsed logical time.
	if elapsed := net.NowMS(); elapsed > 0 {
		demanded := float64(cfg.rounds)
		if burst != nil {
			demanded += float64(burst.n / burst.every)
		}
		run.factor = demanded * rootHoldMS / (elapsed * rootMaxConcurrent)
	}
	run.digest = h.Sum64()
	run.answers = ha.Sum64()
	// Fold the controller's own observable state into the digest via the
	// metrics path every peer exports (deterministically sorted).
	reg := obs.NewRegistry()
	reg.RegisterCollector("adm", func(g *obs.Gather) { rootCtl.CollectObs(g) })
	hd := fnv.New64a()
	for _, mt := range reg.Snapshot() {
		fmt.Fprintf(hd, "%s{%s}=%g\n", mt.Name, mt.Labels, mt.Value)
	}
	run.digest ^= hd.Sum64()
	return run
}

// rebalanceHot replicates the hottest advertisement's base triples onto
// the least lease-loaded eligible server and teaches the root the
// refreshed advertisement. Returns the number of applied replications.
func rebalanceHot(p0 *peer.Peer, servers map[pattern.PeerID]*peer.Peer) int {
	rep := &routing.Replicator{
		Registry: p0.Registry,
		TopK:     1, Copies: 1,
		Load: func(id pattern.PeerID) float64 {
			if s, ok := servers[id]; ok {
				return float64(s.Admission.Occupancy())
			}
			return 0
		},
		Eligible: func(id pattern.PeerID) bool { _, ok := servers[id]; return ok },
		Apply: func(hot, target pattern.PeerID) bool {
			src, ok1 := servers[hot]
			dst, ok2 := servers[target]
			if !ok1 || !ok2 {
				return false
			}
			for _, tr := range src.Base.Triples() {
				dst.Base.Add(tr)
			}
			dst.RefreshAdvertisement()
			p0.Learn(dst.Advertisement())
			return true
		},
	}
	return len(rep.Rebalance())
}

// bronzeFairness is Jain's index over the Low-class tenants' admission
// rates (admitted/offered) in the loaded pass — reported in the per-pass
// diagnostics but not a check: occupancy-bound admission is priority-
// ordered, not tenant-fair (see DESIGN.md §13).
func bronzeFairness(rows map[string]*overloadTenantRow) float64 {
	var xs []float64
	for _, name := range sortedTenantNames(rows) {
		if row := rows[name]; row.Priority == "low" && row.Offered > 0 {
			xs = append(xs, float64(row.Admitted)/float64(row.Offered))
		}
	}
	return jainIndex(xs)
}

// entitlementJain scores the fairness invariant the per-tenant buckets
// actually guarantee: when the refill rate is the binding constraint,
// every tenant gets min(its demand, its entitlement) — the bucket's
// refill over the elapsed logical time plus its burst. Jain's index over
// admitted/entitlement is ≈1 exactly when no tenant is denied tokens
// another same-class tenant consumed beyond its share.
func entitlementJain(rows map[string]*overloadTenantRow, elapsedMS float64) float64 {
	var xs []float64
	for _, name := range sortedTenantNames(rows) {
		row := rows[name]
		if row.Priority != "low" || row.Offered == 0 {
			continue
		}
		entitlement := fairRatePerSec*elapsedMS/1000 + 1 // refill + burst
		if float64(row.Offered) < entitlement {
			entitlement = float64(row.Offered)
		}
		xs = append(xs, float64(row.Admitted)/entitlement)
	}
	return jainIndex(xs)
}

// sortedTenantNames fixes map iteration order (maporder analyzer).
func sortedTenantNames(rows map[string]*overloadTenantRow) []string {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²); 1 when xs is empty.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// p99 returns the 99th-percentile of xs (0 when empty).
func p99(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := (len(s)*99 + 99) / 100
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}
