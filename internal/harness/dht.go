package harness

import (
	"fmt"

	"sqpeer/internal/dht"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
)

func init() {
	register("dht", "DHT routing index for RDF/S schemas (future work §5)", claimDHT)
}

// claimDHT evaluates the paper's DHT proposal: a Chord-style index over
// schema properties (with subsumption folded into publication) versus the
// ad-hoc architecture's k-depth neighborhood pull, on a line topology
// where the query's providers sit far from the asker.
func claimDHT() *Report {
	r := &Report{ID: "dht", Title: "DHT routing index for RDF/S schemas (future work §5)", Pass: true}
	schema := gen.PaperSchema()

	// Correctness on the paper fixture: DHT routing reproduces Figure 2,
	// including the subsumption match of P4.
	net := network.New()
	ring := dht.NewRing(net)
	for id, as := range gen.PaperActiveSchemas() {
		if err := ring.Join(id); err != nil {
			r.check("join", false)
			return r
		}
		if _, err := ring.Publish(id, schema, as); err != nil {
			r.check("publish", false)
			return r
		}
	}
	router := dht.NewRouter(ring, schema, "P1")
	ann, st, err := router.Route(gen.PaperQuery())
	if err != nil {
		r.check("route", false)
		return r
	}
	r.linef("  DHT annotation: %s (lookups=%d hops=%d)", ann, st.Lookups, st.Hops)
	r.check("DHT reproduces the Figure-2 annotation (incl. prop4 ⊑ prop1)",
		fmt.Sprint(ann.PeersFor("Q1")) == "[P1 P2 P4]" &&
			fmt.Sprint(ann.PeersFor("Q2")) == "[P1 P3 P4]")

	// The DHT-routed plan executes like any other.
	peers, _ := paperSystem(2)
	pl, err := plan.Generate(ann)
	if err != nil {
		r.check("plan", false)
		return r
	}
	rows, err := peers["P1"].Engine.Execute(pl)
	r.check("DHT-routed plan executes (6 rows)", err == nil && rows.Len() == 6)

	// Scaling: on an n-peer line where only the far end answers Q2, the
	// ad-hoc k-depth pull must expand across the whole line, while the
	// DHT resolves it in O(log n) hops.
	r.linef("  line-topology sweep (provider at the far end):")
	r.linef("    %6s %18s %14s %12s", "peers", "adhoc pull msgs", "dht msgs", "dht hops")
	for _, n := range []int{16, 32, 64} {
		pullMsgs := adhocPullCost(n)
		dhtMsgs, hops := dhtLookupCost(n)
		r.linef("    %6d %18d %14d %12d", n, pullMsgs, dhtMsgs, hops)
		r.check(fmt.Sprintf("n=%d: DHT routes with fewer messages than full-depth pull", n),
			dhtMsgs < pullMsgs)
	}
	return r
}

// adhocPullCost builds a line of n peers where only the last holds prop2,
// expands the first peer's neighborhood until routing completes, and
// returns the messages spent.
func adhocPullCost(n int) int {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	ids := make([]pattern.PeerID, n)
	for i := 0; i < n; i++ {
		ids[i] = pattern.PeerID(fmt.Sprintf("L%03d", i))
		base := rdf.NewBase()
		switch {
		case i == n-1:
			base = roleBase(string(ids[i]), 2, "prop2")
		case i == 1:
			base = roleBase(string(ids[i]), 2, "prop1")
		}
		var nbrs []pattern.PeerID
		if i > 0 {
			nbrs = append(nbrs, ids[i-1])
		}
		if _, err := a.AddPeer(ids[i], base, nbrs...); err != nil {
			panic(err)
		}
	}
	net.ResetCounters()
	p, _ := a.Peer(ids[0])
	for depth := 2; depth <= n; depth++ {
		if _, err := a.ExpandNeighborhood(ids[0], depth); err != nil {
			panic(err)
		}
		if p.Router.Route(gen.PaperQuery()).Complete() {
			break
		}
	}
	return net.Counters().Messages
}

// dhtLookupCost publishes the same line population into a ring and
// measures one full routing from the first peer.
func dhtLookupCost(n int) (msgs, hops int) {
	net := network.New()
	ring := dht.NewRing(net)
	schema := gen.PaperSchema()
	ids := make([]pattern.PeerID, n)
	for i := 0; i < n; i++ {
		ids[i] = pattern.PeerID(fmt.Sprintf("L%03d", i))
		if err := ring.Join(ids[i]); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		base := rdf.NewBase()
		switch {
		case i == n-1:
			base = roleBase(string(ids[i]), 2, "prop2")
		case i == 1:
			base = roleBase(string(ids[i]), 2, "prop1")
		default:
			continue
		}
		as := pattern.DeriveActiveSchema(base, schema)
		if _, err := ring.Publish(ids[i], schema, as); err != nil {
			panic(err)
		}
	}
	net.ResetCounters()
	router := dht.NewRouter(ring, schema, ids[0])
	ann, st, err := router.Route(gen.PaperQuery())
	if err != nil || !ann.Complete() {
		panic(fmt.Sprintf("dht routing failed: %v complete=%v", err, ann.Complete()))
	}
	return net.Counters().Messages, st.Hops
}
