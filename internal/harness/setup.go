package harness

import (
	"fmt"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
)

// paperSystem builds the Figure-2 peers P1..P4 with their bases on one
// network, with full mutual advertisement knowledge.
func paperSystem(pairs int) (map[pattern.PeerID]*peer.Peer, *network.Network) {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id]}, net)
		if err != nil {
			panic(err)
		}
		peers[id] = p
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	net.ResetCounters()
	return peers, net
}

// figure6Bases builds the five Figure-6 simple-peer bases: P2, P3 hold
// prop1 pairs, P5 holds prop2 pairs, P1 is empty, P4 holds the
// irrelevant prop3.
func figure6Bases(pairs int) map[pattern.PeerID]*rdf.Base {
	return map[pattern.PeerID]*rdf.Base{
		"P1": rdf.NewBase(),
		"P2": roleBase("P2", pairs, "prop1"),
		"P3": roleBase("P3", pairs, "prop1"),
		"P4": roleBase("P4", pairs, "prop3"),
		"P5": roleBase("P5", pairs, "prop2"),
	}
}

// roleBase builds a base holding `pairs` pairs of each named paper
// property, sharing join resources with gen.PaperBases.
func roleBase(peerName string, pairs int, props ...string) *rdf.Base {
	b := rdf.NewBase()
	y := func(i int) rdf.IRI {
		return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
	}
	for _, prop := range props {
		for i := 0; i < pairs; i++ {
			switch prop {
			case "prop1":
				x := rdf.IRI(fmt.Sprintf("http://d/%s#x%d", peerName, i))
				b.Add(rdf.Statement(x, gen.N1("prop1"), y(i)))
				b.Add(rdf.Typing(x, gen.N1("C1")))
			case "prop2":
				z := rdf.IRI(fmt.Sprintf("http://d/%s#z%d", peerName, i))
				b.Add(rdf.Statement(y(i), gen.N1("prop2"), z))
				b.Add(rdf.Typing(z, gen.N1("C3")))
			case "prop3":
				s := rdf.IRI(fmt.Sprintf("http://d/%s#s%d", peerName, i))
				o := rdf.IRI(fmt.Sprintf("http://d/%s#o%d", peerName, i))
				b.Add(rdf.Statement(s, gen.N1("prop3"), o))
			case "prop4":
				x := rdf.IRI(fmt.Sprintf("http://d/%s#x5_%d", peerName, i))
				b.Add(rdf.Statement(x, gen.N1("prop4"), y(i)))
				b.Add(rdf.Typing(x, gen.N1("C5")))
			}
		}
	}
	return b
}
