package harness

import (
	"fmt"

	"sqpeer/internal/gen"
	"sqpeer/internal/membership"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
)

func init() {
	register("churn", "peer churn: join/leave/fail under continuous querying (§1/§2.5)", claimChurn)
}

// churnDetectBound is the documented logical-clock bound (DESIGN.md §14)
// within which the failure detector must confirm a churned-out peer
// dead: with every live peer probing once per round and SuspectTicks=2,
// suspicion plus expiry plus gossip spread stays well under 10 rounds
// for this 9-node topology. Outages shorter than the bound may recover
// before confirmation — those are exempt, the detector is allowed (not
// required) to catch them.
const churnDetectBound = 10

// claimChurn stresses the paper's core premise — "each peer base can join
// and leave the network at will" — by failing and recovering redundant
// providers between queries. It runs the same scripted churn timeline
// twice: the original scripted mode (recovering peers re-announce
// themselves; the ablation baseline) and a detector mode where nobody
// announces anything — liveness and advertisements flow through the
// membership plane alone, and the detector's suspect→confirm timeline is
// asserted against the script (every sufficiently long outage confirmed
// within churnDetectBound rounds, never a false confirmation of the
// always-up anchors).
func claimChurn() *Report {
	r := &Report{ID: "churn", Title: "peer churn: join/leave/fail under continuous querying (§1/§2.5)", Pass: true}
	scriptedChurnPass(r)
	detectorChurnPass(r)
	return r
}

// scriptedChurnPass is the original oracle-fed churn loop: full mutual
// Learn up front, explicit PushAdvertisement on recovery.
func scriptedChurnPass(r *Report) {
	rng := gen.NewRNG(churnSeed)
	schema := gen.PaperSchema()
	net := network.New()

	// Anchors A1 (prop1) and A2 (prop2) never fail, so the query is
	// always answerable; V* peers are churned.
	mk := func(id pattern.PeerID, base *rdf.Base) *peer.Peer {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: base}, net)
		if err != nil {
			panic(err)
		}
		return p
	}
	asker := mk("P0", rdf.NewBase())
	peers := map[pattern.PeerID]*peer.Peer{"P0": asker}
	peers["A1"] = mk("A1", roleBase("A1", 2, "prop1"))
	peers["A2"] = mk("A2", roleBase("A2", 2, "prop2"))
	var volatile []pattern.PeerID
	for i := 0; i < 6; i++ {
		id := pattern.PeerID(fmt.Sprintf("V%d", i))
		prop := "prop1"
		if i%2 == 1 {
			prop = "prop2"
		}
		peers[id] = mk(id, roleBase(string(id), 2, prop))
		volatile = append(volatile, id)
	}
	for _, p := range peers {
		for _, q := range peers {
			if p != q {
				p.Learn(q.Advertisement())
			}
		}
	}

	const rounds = 40
	down := map[pattern.PeerID]bool{}
	successes, replans, minRows, maxRows := 0, 0, 1<<30, 0
	for round := 0; round < rounds; round++ {
		// Churn step: fail or recover one volatile peer.
		v := volatile[rng.Intn(len(volatile))]
		if down[v] {
			net.Recover(v)
			delete(down, v)
			// A recovering peer re-announces itself (re-join).
			if err := peers[v].PushAdvertisement("P0"); err == nil {
				// also restore the asker's statistics knowledge
				asker.Learn(peers[v].Advertisement())
			}
		} else if rng.Intn(2) == 0 {
			net.Fail(v)
			down[v] = true
		}

		mb := asker.Engine.Metrics()
		before := mb.Replans + mb.Migrations
		rows, err := asker.Ask(gen.PaperRQL)
		if err != nil {
			r.linef("  round %d: query failed: %v", round, err)
			continue
		}
		successes++
		ma := asker.Engine.Metrics()
		replans += ma.Replans + ma.Migrations - before
		if rows.Len() < minRows {
			minRows = rows.Len()
		}
		if rows.Len() > maxRows {
			maxRows = rows.Len()
		}
	}
	r.linef("  scripted: rounds=%d successes=%d adaptations=%d answer-size range=[%d..%d]",
		rounds, successes, replans, minRows, maxRows)
	r.check("every query under churn succeeds (anchors guarantee answerability)", successes == rounds)
	r.check("run-time adaptation was exercised", replans > 0)
	r.check("answers shrink and grow with the live provider set", minRows < maxRows)
	// Anchor floor: with only A1×A2 alive, 2 prop1 pairs join 2 prop2
	// pairs on shared keys → at least 2 rows always.
	r.check("answers never drop below the anchor contribution", minRows >= 2)
}

// detectorChurnPass replays the identical churn timeline (same seed,
// same fail/recover state machine) against membership-wired peers: no
// mutual Learn, no PushAdvertisement — views bootstrap and heal through
// gossip and anti-entropy. It asserts the detector's suspect→confirm
// timeline against the script.
func detectorChurnPass(r *Report) {
	rng := gen.NewRNG(churnSeed)
	schema := gen.PaperSchema()
	net := network.New()
	mopts := func() *membership.Options {
		return &membership.Options{Seed: churnSeed, DeadlineMS: 200,
			SuspectTicks: 2, IndirectProbes: 2, DeadRetryTicks: 2}
	}
	mk := func(id pattern.PeerID, base *rdf.Base, quarantine bool) *peer.Peer {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema,
			Base: base, DeadlineMS: 200, MaxRetries: 3, AllowPartial: quarantine,
			Quarantine: quarantine, Membership: mopts()}, net)
		if err != nil {
			panic(err)
		}
		return p
	}
	asker := mk("P0", rdf.NewBase(), true)
	peers := map[pattern.PeerID]*peer.Peer{"P0": asker}
	ids := []pattern.PeerID{"P0", "A1", "A2"}
	peers["A1"] = mk("A1", roleBase("A1", 2, "prop1"), false)
	peers["A2"] = mk("A2", roleBase("A2", 2, "prop2"), false)
	var volatile []pattern.PeerID
	for i := 0; i < 6; i++ {
		id := pattern.PeerID(fmt.Sprintf("V%d", i))
		prop := "prop1"
		if i%2 == 1 {
			prop = "prop2"
		}
		peers[id] = mk(id, roleBase(string(id), 2, prop), false)
		volatile = append(volatile, id)
		ids = append(ids, id)
	}
	for _, id := range ids[1:] {
		if err := peers[id].Membership.Join("P0"); err != nil {
			panic(err)
		}
	}
	tick := func() {
		for _, id := range ids {
			if !net.IsDown(id) {
				peers[id].Membership.Tick()
			}
		}
		asker.Health.Tick()
	}
	for i := 0; i < 12; i++ {
		tick()
	}
	known := 0
	for _, id := range ids[1:] {
		if _, ok := asker.Registry.Get(id); ok {
			known++
		}
	}
	r.check("detector mode: bootstrap converged with no scripted advertisement",
		known == len(ids)-1)

	const rounds = 40
	down := map[pattern.PeerID]bool{}
	failRound := map[pattern.PeerID]int{}  // open outage onset
	confirmed := map[pattern.PeerID]bool{} // asker confirmed this outage
	successes, detections, lateOrMissed, maxLatency := 0, 0, 0, 0
	// closeEpisode scores one finished outage of length n rounds: long
	// outages must have been confirmed; short ones are exempt.
	closeEpisode := func(v pattern.PeerID, n int) {
		if !confirmed[v] && n > churnDetectBound {
			lateOrMissed++
			r.linef("  detector: outage of %s (%d rounds) never confirmed", v, n)
		}
	}
	for round := 0; round < rounds; round++ {
		// The identical churn state machine (same rng draw sequence) as the
		// scripted pass — the timeline being asserted against.
		v := volatile[rng.Intn(len(volatile))]
		if down[v] {
			net.Recover(v)
			delete(down, v)
			closeEpisode(v, round-failRound[v])
			delete(failRound, v)
			delete(confirmed, v)
			// The only thing a restarting peer does is bump its incarnation;
			// re-advertisement is the anti-entropy layer's job.
			peers[v].Membership.Rejoin()
		} else if rng.Intn(2) == 0 {
			net.Fail(v)
			down[v] = true
			failRound[v] = round
		}

		tick()
		for u := range down {
			if confirmed[u] {
				continue
			}
			if st, _ := asker.Membership.StatusOf(u); st == membership.StatusDead {
				confirmed[u] = true
				detections++
				if lat := round - failRound[u] + 1; lat > maxLatency {
					maxLatency = lat
				}
			}
		}
		if _, err := asker.Ask(gen.PaperRQL); err == nil {
			successes++
		}
	}
	for _, u := range volatile {
		if down[u] {
			closeEpisode(u, rounds-failRound[u])
		}
	}
	anchorsAlive := true
	for _, a := range []pattern.PeerID{"A1", "A2"} {
		if st, _ := asker.Membership.StatusOf(a); st == membership.StatusDead {
			anchorsAlive = false
		}
	}
	r.linef("  detector: rounds=%d successes=%d confirmations=%d max suspect→confirm latency=%d (bound %d)",
		rounds, successes, detections, maxLatency, churnDetectBound)
	r.check("detector mode: every query under churn succeeds", successes == rounds)
	r.check("detector confirmed the scripted outages", detections > 0)
	r.check("suspect→confirm timeline within the documented bound for every long outage",
		lateOrMissed == 0 && maxLatency <= churnDetectBound)
	r.check("always-up anchors never falsely confirmed dead", anchorsAlive)
	r.check("rejoins reinstated without scripted re-advertisement",
		asker.Membership.Stats().Rejoins > 0)
}
