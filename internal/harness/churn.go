package harness

import (
	"fmt"

	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
)

func init() {
	register("churn", "peer churn: join/leave/fail under continuous querying (§1/§2.5)", claimChurn)
}

// claimChurn stresses the paper's core premise — "each peer base can join
// and leave the network at will" — by failing and recovering redundant
// providers between queries. Every query must either succeed (run-time
// adaptation routes around the churn) and the answer size must track the
// set of live providers.
func claimChurn() *Report {
	r := &Report{ID: "churn", Title: "peer churn: join/leave/fail under continuous querying (§1/§2.5)", Pass: true}
	rng := gen.NewRNG(churnSeed)
	schema := gen.PaperSchema()
	net := network.New()

	// Anchors A1 (prop1) and A2 (prop2) never fail, so the query is
	// always answerable; V* peers are churned.
	mk := func(id pattern.PeerID, base *rdf.Base) *peer.Peer {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: base}, net)
		if err != nil {
			panic(err)
		}
		return p
	}
	asker := mk("P0", rdf.NewBase())
	peers := map[pattern.PeerID]*peer.Peer{"P0": asker}
	peers["A1"] = mk("A1", roleBase("A1", 2, "prop1"))
	peers["A2"] = mk("A2", roleBase("A2", 2, "prop2"))
	var volatile []pattern.PeerID
	for i := 0; i < 6; i++ {
		id := pattern.PeerID(fmt.Sprintf("V%d", i))
		prop := "prop1"
		if i%2 == 1 {
			prop = "prop2"
		}
		peers[id] = mk(id, roleBase(string(id), 2, prop))
		volatile = append(volatile, id)
	}
	for _, p := range peers {
		for _, q := range peers {
			if p != q {
				p.Learn(q.Advertisement())
			}
		}
	}

	const rounds = 40
	down := map[pattern.PeerID]bool{}
	successes, replans, minRows, maxRows := 0, 0, 1<<30, 0
	for round := 0; round < rounds; round++ {
		// Churn step: fail or recover one volatile peer.
		v := volatile[rng.Intn(len(volatile))]
		if down[v] {
			net.Recover(v)
			delete(down, v)
			// A recovering peer re-announces itself (re-join).
			if err := peers[v].PushAdvertisement("P0"); err == nil {
				// also restore the asker's statistics knowledge
				asker.Learn(peers[v].Advertisement())
			}
		} else if rng.Intn(2) == 0 {
			net.Fail(v)
			down[v] = true
		}

		mb := asker.Engine.Metrics()
		before := mb.Replans + mb.Migrations
		rows, err := asker.Ask(gen.PaperRQL)
		if err != nil {
			r.linef("  round %d: query failed: %v", round, err)
			continue
		}
		successes++
		ma := asker.Engine.Metrics()
		replans += ma.Replans + ma.Migrations - before
		if rows.Len() < minRows {
			minRows = rows.Len()
		}
		if rows.Len() > maxRows {
			maxRows = rows.Len()
		}
	}
	r.linef("  rounds=%d successes=%d adaptations=%d answer-size range=[%d..%d]",
		rounds, successes, replans, minRows, maxRows)
	r.check("every query under churn succeeds (anchors guarantee answerability)", successes == rounds)
	r.check("run-time adaptation was exercised", replans > 0)
	r.check("answers shrink and grow with the live provider set", minRows < maxRows)
	// Anchor floor: with only A1×A2 alive, 2 prop1 pairs join 2 prop2
	// pairs on shared keys → at least 2 rows always.
	r.check("answers never drop below the anchor contribution", minRows >= 2)
	return r
}
