package harness

// Every pseudo-random choice the experiment suite makes flows from one
// of these named seeds through gen.NewRNG, so a whole harness run is a
// pure function of this table: rerunning any experiment reproduces it
// byte for byte, and changing a workload's seed is a reviewed, named
// diff here rather than a literal buried in a loop. The seededrand
// analyzer enforces the discipline (no global math/rand source anywhere
// in internal/...).
const (
	// churnSeed drives the churn experiment's fail/recover coin flips.
	churnSeed = 7
	// distQuerySeed generates CLAIM-DIST's random chain-query workload.
	distQuerySeed = 7
	// overloadSeed drives CLAIM-OVERLOAD's Zipfian tenant mix and its
	// fault injector.
	overloadSeed = 20260808
	// memberSeed drives CLAIM-MEMBER: every detector's probe/sync RNG,
	// the churn schedule and the fault injector.
	memberSeed = 9090
)
