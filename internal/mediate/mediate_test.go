package mediate_test

import (
	"strings"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/mediate"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
)

// foreignNS is a second community schema describing the same domain with
// different vocabulary: D1 -rel1-> D2 -rel2-> D3.
const foreignNS = "http://other-community.example/f#"

func f(local string) rdf.IRI { return rdf.IRI(foreignNS + local) }

func foreignSchema(t testing.TB) *rdf.Schema {
	t.Helper()
	s := rdf.NewSchema(foreignNS)
	for _, c := range []string{"D1", "D2", "D3"} {
		s.MustAddClass(f(c))
	}
	s.MustAddProperty(f("rel1"), f("D1"), f("D2"))
	s.MustAddProperty(f("rel2"), f("D2"), f("D3"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// foreignToPaper articulates the foreign schema onto the paper's n1.
func foreignToPaper(t testing.TB) *mediate.Articulation {
	t.Helper()
	a := mediate.NewArticulation(foreignNS, gen.PaperNS).
		MapClass(f("D1"), gen.N1("C1")).
		MapClass(f("D2"), gen.N1("C2")).
		MapClass(f("D3"), gen.N1("C3")).
		MapProperty(f("rel1"), gen.N1("prop1")).
		MapProperty(f("rel2"), gen.N1("prop2"))
	if err := a.Validate(foreignSchema(t), gen.PaperSchema()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return a
}

// foreignQuery is the Figure-1 query expressed in the foreign vocabulary.
func foreignQuery() *pattern.QueryPattern {
	return &pattern.QueryPattern{
		SchemaName: foreignNS,
		Patterns: []pattern.PathPattern{
			{ID: "Q1", SubjectVar: "X", ObjectVar: "Y", Property: f("rel1"), Domain: f("D1"), Range: f("D2")},
			{ID: "Q2", SubjectVar: "Y", ObjectVar: "Z", Property: f("rel2"), Domain: f("D2"), Range: f("D3")},
		},
		Projections: []string{"X", "Y"},
	}
}

func TestReformulateForeignQuery(t *testing.T) {
	art := foreignToPaper(t)
	got, err := art.Reformulate(foreignQuery(), gen.PaperSchema())
	if err != nil {
		t.Fatalf("Reformulate: %v", err)
	}
	if got.String() != gen.PaperQuery().String() {
		t.Errorf("reformulated = %s\nwant          %s", got, gen.PaperQuery())
	}
	if got.SchemaName != gen.PaperNS {
		t.Errorf("SchemaName = %q", got.SchemaName)
	}
}

func TestReformulateErrors(t *testing.T) {
	art := foreignToPaper(t)
	// Unmapped property.
	q := foreignQuery()
	q.Patterns[0].Property = f("unmapped")
	if _, err := art.Reformulate(q, gen.PaperSchema()); err == nil ||
		!strings.Contains(err.Error(), "no articulation for property") {
		t.Errorf("unmapped property: %v", err)
	}
	// Wrong source schema.
	q2 := gen.PaperQuery()
	if _, err := art.Reformulate(q2, gen.PaperSchema()); err == nil {
		t.Error("query over wrong schema accepted")
	}
}

func TestArticulationValidate(t *testing.T) {
	src := foreignSchema(t)
	dst := gen.PaperSchema()
	bad := mediate.NewArticulation(foreignNS, gen.PaperNS).
		MapClass(f("Dmissing"), gen.N1("C1")).
		MapProperty(f("rel1"), gen.N1("propmissing"))
	err := bad.Validate(src, dst)
	if err == nil {
		t.Fatal("invalid articulation accepted")
	}
	for _, want := range []string{"Dmissing", "propmissing"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error misses %q: %v", want, err)
		}
	}
	// Incompatible domain mapping: rel1's domain D1 mapped to C3, but
	// prop1's domain is C1.
	incompatible := mediate.NewArticulation(foreignNS, gen.PaperNS).
		MapClass(f("D1"), gen.N1("C3")).
		MapProperty(f("rel1"), gen.N1("prop1"))
	if err := incompatible.Validate(src, dst); err == nil {
		t.Error("incompatible domain mapping accepted")
	}
}

func TestInvert(t *testing.T) {
	art := foreignToPaper(t)
	inv, err := art.Invert()
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if inv.From != gen.PaperNS || inv.To != foreignNS {
		t.Errorf("inverted direction = %s → %s", inv.From, inv.To)
	}
	if inv.Properties[gen.N1("prop1")] != f("rel1") {
		t.Errorf("inverted property map = %v", inv.Properties)
	}
	// Non-injective mapping cannot invert.
	dup := mediate.NewArticulation("a", "b").
		MapProperty("http://a#p1", "http://b#q").
		MapProperty("http://a#p2", "http://b#q")
	if _, err := dup.Invert(); err == nil {
		t.Error("non-injective articulation inverted")
	}
}

func TestMediatorLookup(t *testing.T) {
	m := mediate.NewMediator()
	m.Add(foreignToPaper(t))
	if _, ok := m.Between(foreignNS, gen.PaperNS); !ok {
		t.Error("registered articulation not found")
	}
	if _, ok := m.Between("x", "y"); ok {
		t.Error("ghost articulation found")
	}
	if got := m.Targets(foreignNS); len(got) != 1 || got[0] != gen.PaperNS {
		t.Errorf("Targets = %v", got)
	}
	q, err := m.Reformulate(foreignQuery(), gen.PaperSchema())
	if err != nil || q.SchemaName != gen.PaperNS {
		t.Errorf("mediator reformulation: %v %v", q, err)
	}
	if _, err := m.Reformulate(gen.PaperQuery(), foreignSchema(t)); err == nil {
		t.Error("reformulation without articulation accepted")
	}
}

// TestMediatedQueryEndToEnd: a client thinking in the foreign vocabulary
// is answered by the paper's n1 peers after super-peer-style mediation.
func TestMediatedQueryEndToEnd(t *testing.T) {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(3)
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id]}, net)
		if err != nil {
			t.Fatal(err)
		}
		peers[id] = p
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	// Mediate: reformulate the foreign query, route in n1, execute.
	m := mediate.NewMediator()
	m.Add(foreignToPaper(t))
	reformulated, err := m.Reformulate(foreignQuery(), schema)
	if err != nil {
		t.Fatal(err)
	}
	ann := routing.NewRouter(schema, peers["P1"].Registry).Route(reformulated)
	if !ann.Complete() {
		t.Fatalf("mediated routing incomplete: %s", ann)
	}
	pl, err := plan.Generate(ann)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := peers["P1"].Engine.Execute(pl)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer as the native n1 query: 9 rows.
	if rows.Len() != 9 {
		t.Errorf("mediated answer = %d rows, want 9:\n%s", rows.Len(), rows)
	}
}
