// Package mediate implements the schema-mediation role the paper assigns
// to super-peers (§3.1): "a query expressed in terms of a global-known
// schema needs to be reformulated in terms of the schemas employed by the
// local bases of the simple-peers by using appropriate mapping rules",
// with the mapping rules being articulations — class and property
// correspondences between community RDF/S schemas (the mechanism behind
// the multi-layered super-peer organization and the cross-SON backbone).
package mediate

import (
	"fmt"
	"sort"
	"strings"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// Articulation maps the classes and properties of a source schema onto a
// target schema. Articulations are directional; Invert derives the
// reverse mapping when the correspondence is one-to-one.
type Articulation struct {
	// From and To name the source and target schemas.
	From, To string
	// Classes maps source class IRIs to target class IRIs.
	Classes map[rdf.IRI]rdf.IRI
	// Properties maps source property IRIs to target property IRIs.
	Properties map[rdf.IRI]rdf.IRI
}

// NewArticulation returns an empty articulation between two schemas.
func NewArticulation(from, to string) *Articulation {
	return &Articulation{
		From: from, To: to,
		Classes:    map[rdf.IRI]rdf.IRI{},
		Properties: map[rdf.IRI]rdf.IRI{},
	}
}

// MapClass records a class correspondence.
func (a *Articulation) MapClass(from, to rdf.IRI) *Articulation {
	a.Classes[from] = to
	return a
}

// MapProperty records a property correspondence.
func (a *Articulation) MapProperty(from, to rdf.IRI) *Articulation {
	a.Properties[from] = to
	return a
}

// Validate checks the articulation against the two schemas: every mapped
// name must be declared on both sides, and for each property mapping the
// mapped domain/range must be subsumption-compatible in the target schema
// (so reformulated patterns remain well-typed).
func (a *Articulation) Validate(src, dst *rdf.Schema) error {
	var problems []string
	for from, to := range a.Classes {
		if !src.HasClass(from) {
			problems = append(problems, fmt.Sprintf("class %s not in source schema", from))
		}
		if !dst.HasClass(to) {
			problems = append(problems, fmt.Sprintf("class %s not in target schema", to))
		}
	}
	for from, to := range a.Properties {
		srcDef, ok := src.PropertyByName(from)
		if !ok {
			problems = append(problems, fmt.Sprintf("property %s not in source schema", from))
			continue
		}
		dstDef, ok := dst.PropertyByName(to)
		if !ok {
			problems = append(problems, fmt.Sprintf("property %s not in target schema", to))
			continue
		}
		if mapped, ok := a.Classes[srcDef.Domain]; ok {
			if !dst.IsSubClassOf(mapped, dstDef.Domain) && !dst.IsSubClassOf(dstDef.Domain, mapped) {
				problems = append(problems, fmt.Sprintf(
					"property %s→%s: mapped domain %s incompatible with %s", from, to, mapped, dstDef.Domain))
			}
		}
		if mapped, ok := a.Classes[srcDef.Range]; ok {
			if !dst.IsSubClassOf(mapped, dstDef.Range) && !dst.IsSubClassOf(dstDef.Range, mapped) {
				problems = append(problems, fmt.Sprintf(
					"property %s→%s: mapped range %s incompatible with %s", from, to, mapped, dstDef.Range))
			}
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("mediate: articulation %s→%s invalid:\n  %s",
			a.From, a.To, strings.Join(problems, "\n  "))
	}
	return nil
}

// Invert derives the reverse articulation. It fails when the mapping is
// not one-to-one (two source names mapped to the same target name).
func (a *Articulation) Invert() (*Articulation, error) {
	inv := NewArticulation(a.To, a.From)
	for from, to := range a.Classes {
		if existing, dup := inv.Classes[to]; dup {
			return nil, fmt.Errorf("mediate: cannot invert: classes %s and %s both map to %s",
				existing, from, to)
		}
		inv.Classes[to] = from
	}
	for from, to := range a.Properties {
		if existing, dup := inv.Properties[to]; dup {
			return nil, fmt.Errorf("mediate: cannot invert: properties %s and %s both map to %s",
				existing, from, to)
		}
		inv.Properties[to] = from
	}
	return inv, nil
}

// Reformulate rewrites a semantic query pattern from the source schema
// into the target schema's vocabulary (paper §2.4/§3.1). Every property
// must be mapped; end-point classes use the class mapping when present
// and otherwise default to the target property's declared end-points
// (mirroring how RQL analysis fills unrestricted ends).
func (a *Articulation) Reformulate(q *pattern.QueryPattern, target *rdf.Schema) (*pattern.QueryPattern, error) {
	if q.SchemaName != "" && a.From != "" && q.SchemaName != a.From {
		return nil, fmt.Errorf("mediate: query is over schema %s, articulation maps %s", q.SchemaName, a.From)
	}
	out := &pattern.QueryPattern{
		SchemaName:  a.To,
		Projections: append([]string{}, q.Projections...),
	}
	for _, pp := range q.Patterns {
		toProp, ok := a.Properties[pp.Property]
		if !ok {
			return nil, fmt.Errorf("mediate: no articulation for property %s (pattern %s)", pp.Property, pp.ID)
		}
		def, ok := target.PropertyByName(toProp)
		if !ok {
			return nil, fmt.Errorf("mediate: articulated property %s not declared in target schema", toProp)
		}
		domain := def.Domain
		if mapped, ok := a.Classes[pp.Domain]; ok {
			domain = mapped
		}
		rng := def.Range
		if mapped, ok := a.Classes[pp.Range]; ok {
			rng = mapped
		}
		out.Patterns = append(out.Patterns, pattern.PathPattern{
			ID:         pp.ID,
			SubjectVar: pp.SubjectVar,
			ObjectVar:  pp.ObjectVar,
			Property:   toProp,
			Domain:     domain,
			Range:      rng,
		})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("mediate: reformulated pattern invalid: %w", err)
	}
	return out, nil
}

// Mediator holds the articulations a super-peer knows and reformulates
// queries between schemas.
type Mediator struct {
	arts map[string]map[string]*Articulation // from → to → articulation
}

// NewMediator returns an empty mediator.
func NewMediator() *Mediator {
	return &Mediator{arts: map[string]map[string]*Articulation{}}
}

// Add registers an articulation (replacing any previous one for the same
// schema pair).
func (m *Mediator) Add(a *Articulation) {
	if m.arts[a.From] == nil {
		m.arts[a.From] = map[string]*Articulation{}
	}
	m.arts[a.From][a.To] = a
}

// Between returns the articulation from one schema to another.
func (m *Mediator) Between(from, to string) (*Articulation, bool) {
	a, ok := m.arts[from][to]
	return a, ok
}

// Targets returns the schemas reachable from a source schema, sorted.
func (m *Mediator) Targets(from string) []string {
	out := make([]string, 0, len(m.arts[from]))
	for to := range m.arts[from] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// Reformulate rewrites the query pattern into the target schema using the
// registered articulation.
func (m *Mediator) Reformulate(q *pattern.QueryPattern, target *rdf.Schema) (*pattern.QueryPattern, error) {
	a, ok := m.Between(q.SchemaName, target.Name)
	if !ok {
		return nil, fmt.Errorf("mediate: no articulation from %s to %s", q.SchemaName, target.Name)
	}
	return a.Reformulate(q, target)
}
