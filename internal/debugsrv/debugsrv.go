// Package debugsrv is the live operations surface: a plain net/http
// listener exposing the obs registry in Prometheus text format plus the
// /debug endpoints (event log, flight-recorder dumps, SLO state). It is
// the one deliberately wall-clock-adjacent corner of the middleware —
// serving HTTP to a human operator is real-time by nature — so the wall
// clock is confined to a two-function shim below (the SetRealLatency
// idiom), the deterministic core never imports this package, and nothing
// served here feeds back into query results.
package debugsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"sqpeer/internal/obs"
)

// Server serves the operations endpoints for one process's peers. All
// fields are set before Start and never mutated afterwards.
type Server struct {
	// Registry backs /metrics (required).
	Registry *obs.Registry
	// Events backs /debug/events (optional; 404-less empty output when nil).
	Events *obs.EventLog
	// Recorders back /debug/flightrec, typically one per local peer.
	Recorders []*obs.FlightRecorder
	// SLO backs /debug/slo (optional).
	SLO *obs.SLOEvaluator

	ln    net.Listener
	start wallStart
}

// wallStart is the confined wall-clock anchor for /healthz uptime.
type wallStart struct{ t time.Time }

// newWallStart reads the wall clock once, at listener start.
func newWallStart() wallStart {
	//lint:allow walltime the debug listener's uptime anchor: operator-facing wall time, never feeds results
	return wallStart{t: time.Now()}
}

// uptimeSeconds is the paired elapsed read.
func (w wallStart) uptimeSeconds() float64 {
	//lint:allow walltime paired elapsed read for newWallStart
	return time.Since(w.t).Seconds()
}

// Start binds addr (e.g. "127.0.0.1:6060"; ":0" picks a free port) and
// serves in a background goroutine until Stop. Returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	if s.Registry == nil {
		return "", fmt.Errorf("debugsrv: Registry is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	s.ln = ln
	s.start = newWallStart()
	srv := &http.Server{Handler: s.mux()}
	go func() {
		// Serve returns net.ErrClosed after Stop; nothing to report.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Stop closes the listener; in-flight responses finish on their own.
func (s *Server) Stop() {
	if s.ln != nil {
		_ = s.ln.Close()
	}
}

// mux wires the endpoint table.
func (s *Server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/debug/events", s.handleEvents)
	m.HandleFunc("/debug/flightrec", s.handleFlightRec)
	m.HandleFunc("/debug/slo", s.handleSLO)
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.Registry.PromText())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime_seconds=%.1f\n", s.start.uptimeSeconds())
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.Write(s.Events.JSONL())
}

func (s *Server) handleFlightRec(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var dumps []obs.Dump
	for _, fr := range s.Recorders {
		dumps = append(dumps, fr.Dumps()...)
	}
	if dumps == nil {
		dumps = []obs.Dump{}
	}
	blob, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(blob)
	w.Write([]byte("\n"))
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.SLO.String())
	if s.SLO == nil {
		return
	}
	alerts := s.SLO.Alerts()
	if len(alerts) == 0 {
		return
	}
	blob, err := json.MarshalIndent(alerts, "", "  ")
	if err != nil {
		return
	}
	w.Write(blob)
	w.Write([]byte("\n"))
}
