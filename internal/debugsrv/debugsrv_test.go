package debugsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sqpeer/internal/obs"
)

// The endpoint smoke test: bind an ephemeral port, scrape every
// endpoint over real HTTP, and assert /metrics is parseable Prometheus
// exposition containing a known counter.
func TestEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("exec_shed_total", obs.L("peer", "P0")).Add(4)
	reg.Histogram("peer_query_latency_ms", obs.L("peer", "P0")).Observe(12)
	log := obs.NewEventLog(func() float64 { return 1 })
	fr := obs.NewFlightRecorder("P0", obs.DefaultRecorderConfig())
	log.AddSink(fr.Observe)
	log.Emit("exec", "shed", "P0", "T1")
	slo := obs.NewSLOEvaluator(reg, func() float64 { return 1 }, nil)

	s := &Server{Registry: reg, Events: log, Recorders: []*obs.FlightRecorder{fr}, SLO: slo}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	samples, err := obs.ParsePromText(metrics)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v\n%s", err, metrics)
	}
	found := false
	for _, smp := range samples {
		if smp.Name == "exec_shed_total" && smp.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("exec_shed_total not in scrape:\n%s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE peer_query_latency_ms histogram") {
		t.Fatalf("histogram family missing from scrape:\n%s", metrics)
	}

	if h := get("/healthz"); !strings.HasPrefix(h, "ok uptime_seconds=") {
		t.Fatalf("healthz: %q", h)
	}

	events := get("/debug/events")
	if !strings.Contains(events, `"component":"exec"`) {
		t.Fatalf("event log missing from /debug/events: %q", events)
	}

	var dumps []obs.Dump
	if err := json.Unmarshal([]byte(get("/debug/flightrec")), &dumps); err != nil {
		t.Fatalf("/debug/flightrec is not JSON: %v", err)
	}

	if sloBody := get("/debug/slo"); !strings.Contains(sloBody, "latency-p99") {
		t.Fatalf("/debug/slo missing default rules: %q", sloBody)
	}
}

func TestStartRequiresRegistry(t *testing.T) {
	s := &Server{}
	if _, err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("Start without a registry should fail")
	}
}
