// Package gen provides workload generators: the paper's running example
// (Figures 1–7) as a reusable fixture, plus synthetic community schemas,
// peer bases with controlled data distribution, and query workloads for
// the benchmark harness.
package gen

import (
	"fmt"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// PaperNS is the namespace n1 of the paper's Figure-1 community schema.
const PaperNS = "http://ics.forth.gr/SON/n1#"

// N1 qualifies a local name in the paper's n1 namespace.
func N1(local string) rdf.IRI { return rdf.IRI(PaperNS + local) }

// PaperSchema builds the community RDF/S schema of Figure 1: classes
// C1..C4 connected by prop1(C1→C2), prop2(C2→C3), prop3(C3→C4);
// subclasses C5⊑C1 and C6⊑C2 related by prop4(C5→C6) ⊑ prop1.
func PaperSchema() *rdf.Schema {
	s := rdf.NewSchema(PaperNS)
	for _, c := range []string{"C1", "C2", "C3", "C4", "C5", "C6"} {
		s.MustAddClass(N1(c))
	}
	s.MustAddProperty(N1("prop1"), N1("C1"), N1("C2"))
	s.MustAddProperty(N1("prop2"), N1("C2"), N1("C3"))
	s.MustAddProperty(N1("prop3"), N1("C3"), N1("C4"))
	s.MustSetSubClassOf(N1("C5"), N1("C1"))
	s.MustSetSubClassOf(N1("C6"), N1("C2"))
	s.MustAddProperty(N1("prop4"), N1("C5"), N1("C6"))
	s.MustSetSubPropertyOf(N1("prop4"), N1("prop1"))
	s.Freeze()
	return s
}

// PaperQuery builds the semantic query pattern of the RQL query Q of
// Figure 1: Q1 = {X;C1} prop1 {Y;C2} joined on Y with
// Q2 = {Y;C2} prop2 {Z;C3}, projecting X and Y.
func PaperQuery() *pattern.QueryPattern {
	return &pattern.QueryPattern{
		SchemaName: PaperNS,
		Patterns: []pattern.PathPattern{
			{ID: "Q1", SubjectVar: "X", ObjectVar: "Y", Property: N1("prop1"), Domain: N1("C1"), Range: N1("C2")},
			{ID: "Q2", SubjectVar: "Y", ObjectVar: "Z", Property: N1("prop2"), Domain: N1("C2"), Range: N1("C3")},
		},
		Projections: []string{"X", "Y"},
	}
}

// PaperRQL is the Figure-1 RQL query in concrete syntax, used by the rql
// package tests and the quickstart example.
const PaperRQL = `SELECT X, Y
FROM {X;n1:C1}n1:prop1{Y}, {Y}n1:prop2{Z}
USING NAMESPACE n1 = &` + PaperNS + `&`

// PaperRVL is the Figure-1 RVL advertisement view in concrete syntax: it
// populates C5, C6 and prop4 from the peer's base.
const PaperRVL = `CREATE NAMESPACE mv = &http://ics.forth.gr/views/v1#&
VIEW n1:C5(X), n1:C6(Y), n1:prop4(X, Y)
FROM {X;n1:C5}n1:prop4{Y;n1:C6}
USING NAMESPACE n1 = &` + PaperNS + `&`

// PaperActiveSchemas returns the four peer active-schemas of Figure 2:
//
//	P1: prop1, prop2    P2: prop1    P3: prop2    P4: prop4, prop2
func PaperActiveSchemas() map[pattern.PeerID]*pattern.ActiveSchema {
	s := PaperSchema()
	mk := func(props ...string) *pattern.ActiveSchema {
		a := pattern.NewActiveSchema(PaperNS)
		for _, p := range props {
			if err := a.AddProperty(s, N1(p)); err != nil {
				panic(err)
			}
		}
		return a
	}
	return map[pattern.PeerID]*pattern.ActiveSchema{
		"P1": mk("prop1", "prop2"),
		"P2": mk("prop1"),
		"P3": mk("prop2"),
		"P4": mk("prop4", "prop2"),
	}
}

// PaperBases materializes description bases for the Figure-2 peers,
// `pairsPerProp` instance pairs per populated property. Resources are
// named per peer so answers are traceable, and the join variable Y is
// shared between prop1/prop4 objects and prop2 subjects so the Figure-1
// query joins successfully within and across peers.
func PaperBases(pairsPerProp int) map[pattern.PeerID]*rdf.Base {
	out := map[pattern.PeerID]*rdf.Base{}
	data := func(peer, local string, i int) rdf.IRI {
		return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/%s#%s%d", peer, local, i))
	}
	// Shared join resources: y_i appears as object of prop1/prop4 pairs
	// and subject of prop2 pairs across all peers, giving cross-peer joins.
	y := func(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i)) }

	build := func(peer string, props []string) *rdf.Base {
		b := rdf.NewBase()
		for _, prop := range props {
			for i := 0; i < pairsPerProp; i++ {
				switch prop {
				case "prop1":
					x := data(peer, "x", i)
					b.Add(rdf.Statement(x, N1("prop1"), y(i)))
					b.Add(rdf.Typing(x, N1("C1")))
					b.Add(rdf.Typing(y(i), N1("C2")))
				case "prop4":
					x := data(peer, "x5_", i)
					b.Add(rdf.Statement(x, N1("prop4"), y(i)))
					b.Add(rdf.Typing(x, N1("C5")))
					b.Add(rdf.Typing(y(i), N1("C6")))
				case "prop2":
					z := data(peer, "z", i)
					b.Add(rdf.Statement(y(i), N1("prop2"), z))
					b.Add(rdf.Typing(y(i), N1("C2")))
					b.Add(rdf.Typing(z, N1("C3")))
				case "prop3":
					zz := data(peer, "zz", i)
					w := data(peer, "w", i)
					b.Add(rdf.Statement(zz, N1("prop3"), w))
					b.Add(rdf.Typing(zz, N1("C3")))
					b.Add(rdf.Typing(w, N1("C4")))
				}
			}
		}
		return b
	}
	out["P1"] = build("P1", []string{"prop1", "prop2"})
	out["P2"] = build("P2", []string{"prop1"})
	out["P3"] = build("P3", []string{"prop2"})
	out["P4"] = build("P4", []string{"prop4", "prop2"})
	return out
}
