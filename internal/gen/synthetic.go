package gen

import (
	"fmt"
	"math/rand"

	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
)

// SynNS is the namespace of generated community schemas.
const SynNS = "http://ics.forth.gr/SON/syn#"

// NewRNG is the repo's one sanctioned PRNG constructor: an explicitly
// seeded private source, so every workload is a pure function of the
// seed its caller (the harness, a benchmark) passes down. The seededrand
// analyzer forbids math/rand's process-global source everywhere; route
// new randomness through this constructor rather than re-deriving it.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Distribution selects how generated data is spread over peer bases
// (paper §2.3: "data distribution (vertical, horizontal and mixed) of
// peer bases").
type Distribution int

const (
	// Vertical gives each peer all instance pairs of a subset of the
	// properties (peers specialize by schema part).
	Vertical Distribution = iota
	// Horizontal gives each peer a slice of the instance chains across
	// all properties (peers specialize by data part).
	Horizontal
	// Mixed splits both ways: property groups × chain slices.
	Mixed
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case Vertical:
		return "vertical"
	case Horizontal:
		return "horizontal"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Synthetic generates chain-shaped community schemas, peer bases with
// controlled distribution, and conjunctive chain queries — the workload
// family behind the parameter-sweep benchmarks.
type Synthetic struct {
	// Schema is the generated community schema: classes K0..Kn linked by
	// properties p1..pn (pi: K(i-1) → Ki), optionally with subclasses
	// K*i ⊑ Ki and subproperties sp i ⊑ pi.
	Schema *rdf.Schema
	// NProps is the chain length n.
	NProps int
	// WithSubs records whether subsumption structure was generated.
	WithSubs bool
}

// SynIRI qualifies a local name in the synthetic namespace.
func SynIRI(local string) rdf.IRI { return rdf.IRI(SynNS + local) }

// NewSynthetic builds a chain schema with n properties. With subs, every
// property pi gains a subproperty spi ⊑ pi between subclasses
// Ks(i-1) ⊑ K(i-1) and Ksi ⊑ Ki, mirroring the paper's prop4 ⊑ prop1.
func NewSynthetic(nProps int, withSubs bool) *Synthetic {
	s := rdf.NewSchema(SynNS)
	for i := 0; i <= nProps; i++ {
		s.MustAddClass(SynIRI(fmt.Sprintf("K%d", i)))
	}
	for i := 1; i <= nProps; i++ {
		s.MustAddProperty(SynIRI(fmt.Sprintf("p%d", i)),
			SynIRI(fmt.Sprintf("K%d", i-1)), SynIRI(fmt.Sprintf("K%d", i)))
	}
	if withSubs {
		for i := 0; i <= nProps; i++ {
			s.MustAddClass(SynIRI(fmt.Sprintf("Ks%d", i)))
			s.MustSetSubClassOf(SynIRI(fmt.Sprintf("Ks%d", i)), SynIRI(fmt.Sprintf("K%d", i)))
		}
		for i := 1; i <= nProps; i++ {
			s.MustAddProperty(SynIRI(fmt.Sprintf("sp%d", i)),
				SynIRI(fmt.Sprintf("Ks%d", i-1)), SynIRI(fmt.Sprintf("Ks%d", i)))
			s.MustSetSubPropertyOf(SynIRI(fmt.Sprintf("sp%d", i)), SynIRI(fmt.Sprintf("p%d", i)))
		}
	}
	s.Freeze()
	return &Synthetic{Schema: s, NProps: nProps, WithSubs: withSubs}
}

// Prop returns the i-th chain property (1-based).
func (s *Synthetic) Prop(i int) rdf.IRI { return SynIRI(fmt.Sprintf("p%d", i)) }

// SubProp returns the i-th subproperty (1-based; only with WithSubs).
func (s *Synthetic) SubProp(i int) rdf.IRI { return SynIRI(fmt.Sprintf("sp%d", i)) }

// Class returns the i-th chain class (0-based).
func (s *Synthetic) Class(i int) rdf.IRI { return SynIRI(fmt.Sprintf("K%d", i)) }

// chainRes names the j-th chain's resource at position i.
func chainRes(i, j int) rdf.IRI {
	return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/syn#r_%d_%d", i, j))
}

// Query builds a conjunctive chain query over properties
// p(start)..p(start+length-1), variables V0..Vlength, projecting the two
// end variables.
func (s *Synthetic) Query(start, length int) *pattern.QueryPattern {
	q := &pattern.QueryPattern{SchemaName: SynNS}
	for k := 0; k < length; k++ {
		i := start + k
		q.Patterns = append(q.Patterns, pattern.PathPattern{
			ID:         fmt.Sprintf("Q%d", k+1),
			SubjectVar: fmt.Sprintf("V%d", k),
			ObjectVar:  fmt.Sprintf("V%d", k+1),
			Property:   s.Prop(i),
			Domain:     s.Class(i - 1),
			Range:      s.Class(i),
		})
	}
	q.Projections = []string{"V0", fmt.Sprintf("V%d", length)}
	return q
}

// RQL renders the chain query in concrete syntax.
func (s *Synthetic) RQL(start, length int) string {
	froms := ""
	for k := 0; k < length; k++ {
		if k > 0 {
			froms += ", "
		}
		froms += fmt.Sprintf("{V%d}syn:p%d{V%d}", k, start+k, k+1)
	}
	return fmt.Sprintf("SELECT V0, V%d FROM %s USING NAMESPACE syn = &%s&",
		length, froms, SynNS)
}

// Bases materializes peer bases for the given distribution: `chains`
// complete instance chains r_0_j → r_1_j → … → r_n_j spread over `peers`
// bases. Every generated base gets the typing triples of its resources.
func (s *Synthetic) Bases(peers, chains int, dist Distribution) map[pattern.PeerID]*rdf.Base {
	out := map[pattern.PeerID]*rdf.Base{}
	ids := make([]pattern.PeerID, peers)
	for k := 0; k < peers; k++ {
		ids[k] = pattern.PeerID(fmt.Sprintf("SP-%03d", k))
		out[ids[k]] = rdf.NewBase()
	}
	grid := 1
	if dist == Mixed {
		for grid*grid < peers {
			grid++
		}
	}
	owner := func(propIdx, chainIdx int) pattern.PeerID {
		switch dist {
		case Vertical:
			return ids[(propIdx-1)%peers]
		case Horizontal:
			return ids[chainIdx%peers]
		default: // Mixed: property groups × chain slices
			row := (propIdx - 1) % grid
			col := chainIdx % grid
			return ids[(row*grid+col)%peers]
		}
	}
	for j := 0; j < chains; j++ {
		for i := 1; i <= s.NProps; i++ {
			b := out[owner(i, j)]
			b.Add(rdf.Statement(chainRes(i-1, j), s.Prop(i), chainRes(i, j)))
			b.Add(rdf.Typing(chainRes(i-1, j), s.Class(i-1)))
			b.Add(rdf.Typing(chainRes(i, j), s.Class(i)))
		}
	}
	return out
}

// IrrelevantBase builds a base populated only with properties OUTSIDE the
// window [1..relevantProps], so a query over that window never matches it
// — the irrelevant-peer population of the SON-vs-flooding experiment.
func (s *Synthetic) IrrelevantBase(relevantProps, chains int) *rdf.Base {
	b := rdf.NewBase()
	for j := 0; j < chains; j++ {
		for i := relevantProps + 1; i <= s.NProps; i++ {
			b.Add(rdf.Statement(chainRes(i-1, j), s.Prop(i), chainRes(i, j)))
			b.Add(rdf.Typing(chainRes(i-1, j), s.Class(i-1)))
		}
	}
	return b
}

// ActiveSchemas derives the advertisement of every generated base.
func ActiveSchemas(schema *rdf.Schema, bases map[pattern.PeerID]*rdf.Base) map[pattern.PeerID]*pattern.ActiveSchema {
	out := map[pattern.PeerID]*pattern.ActiveSchema{}
	for id, b := range bases {
		out[id] = pattern.DeriveActiveSchema(b, schema)
	}
	return out
}

// RandomQueries generates q random chain queries of the given length with
// a seeded PRNG (deterministic workloads for benchmarks).
func (s *Synthetic) RandomQueries(q, length int, seed int64) []*pattern.QueryPattern {
	rng := NewRNG(seed)
	out := make([]*pattern.QueryPattern, q)
	for k := range out {
		maxStart := s.NProps - length + 1
		if maxStart < 1 {
			maxStart = 1
		}
		out[k] = s.Query(1+rng.Intn(maxStart), length)
	}
	return out
}
