package gen_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

func TestPaperSchemaShape(t *testing.T) {
	s := gen.PaperSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Classes()) != 6 || len(s.Properties()) != 4 {
		t.Fatalf("classes=%d properties=%d", len(s.Classes()), len(s.Properties()))
	}
	if !s.IsSubPropertyOf(gen.N1("prop4"), gen.N1("prop1")) {
		t.Error("prop4 ⊑ prop1 missing")
	}
}

func TestPaperQueryValidates(t *testing.T) {
	if err := gen.PaperQuery().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPaperRQLMatchesPaperQuery(t *testing.T) {
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, gen.PaperSchema())
	if err != nil {
		t.Fatalf("ParseAndAnalyze: %v", err)
	}
	if c.Pattern.String() != gen.PaperQuery().String() {
		t.Errorf("RQL text and fixture query diverge:\n%s\n%s", c.Pattern, gen.PaperQuery())
	}
}

func TestPaperBasesJoinAcrossPeers(t *testing.T) {
	bases := gen.PaperBases(2)
	// P2's prop1 objects and P3's prop2 subjects share y_i, so a
	// cross-peer join is possible.
	p2Pairs := bases["P2"].Pairs(gen.N1("prop1"), nil)
	p3Pairs := bases["P3"].Pairs(gen.N1("prop2"), nil)
	if len(p2Pairs) != 2 || len(p3Pairs) != 2 {
		t.Fatalf("pair counts: %d, %d", len(p2Pairs), len(p3Pairs))
	}
	joinable := false
	for _, a := range p2Pairs {
		for _, b := range p3Pairs {
			if a.Y == b.X {
				joinable = true
			}
		}
	}
	if !joinable {
		t.Error("P2 and P3 bases share no join keys")
	}
}

func TestSyntheticSchema(t *testing.T) {
	s := gen.NewSynthetic(5, true)
	if err := s.Schema.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.Schema.IsSubPropertyOf(s.SubProp(3), s.Prop(3)) {
		t.Error("sp3 ⊑ p3 missing")
	}
	if !s.Schema.IsSubClassOf(gen.SynIRI("Ks2"), s.Class(2)) {
		t.Error("Ks2 ⊑ K2 missing")
	}
	plain := gen.NewSynthetic(3, false)
	if plain.Schema.HasProperty(gen.SynIRI("sp1")) {
		t.Error("subs generated without WithSubs")
	}
}

func TestSyntheticQueryAndRQLAgree(t *testing.T) {
	s := gen.NewSynthetic(6, false)
	q := s.Query(2, 3)
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(q.Patterns) != 3 || q.Patterns[0].Property != s.Prop(2) {
		t.Errorf("query = %s", q)
	}
	c, err := rql.ParseAndAnalyze(s.RQL(2, 3), s.Schema)
	if err != nil {
		t.Fatalf("RQL: %v", err)
	}
	if c.Pattern.String() != q.String() {
		t.Errorf("RQL and Query diverge:\n%s\n%s", c.Pattern, q)
	}
}

// TestDistributionsPreserveData: under every distribution the union of
// peer bases holds exactly the same chain triples, and the chain query
// over the union finds every chain.
func TestDistributionsPreserveData(t *testing.T) {
	s := gen.NewSynthetic(4, false)
	const peers, chains = 3, 6
	for _, dist := range []gen.Distribution{gen.Vertical, gen.Horizontal, gen.Mixed} {
		bases := s.Bases(peers, chains, dist)
		if len(bases) != peers {
			t.Fatalf("%s: %d bases", dist, len(bases))
		}
		merged := rdf.NewBase()
		for _, b := range bases {
			for _, tr := range b.Triples() {
				merged.Add(tr)
			}
		}
		c, err := rql.ParseAndAnalyze(s.RQL(1, 4), s.Schema)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := rql.Eval(c, merged)
		if err != nil {
			t.Fatal(err)
		}
		if rows.Len() != chains {
			t.Errorf("%s: merged eval = %d rows, want %d", dist, rows.Len(), chains)
		}
	}
}

// TestVerticalVsHorizontalShape verifies the structural difference: under
// Vertical each property lives wholly at one peer; under Horizontal every
// peer holds every property but only some chains.
func TestVerticalVsHorizontalShape(t *testing.T) {
	s := gen.NewSynthetic(4, false)
	const peers, chains = 2, 4

	vert := s.Bases(peers, chains, gen.Vertical)
	for i := 1; i <= 4; i++ {
		holders := 0
		for _, b := range vert {
			if len(b.Pairs(s.Prop(i), nil)) > 0 {
				holders++
			}
		}
		if holders != 1 {
			t.Errorf("vertical: p%d held by %d peers, want 1", i, holders)
		}
	}
	horiz := s.Bases(peers, chains, gen.Horizontal)
	for _, b := range horiz {
		for i := 1; i <= 4; i++ {
			if got := len(b.Pairs(s.Prop(i), nil)); got != chains/peers {
				t.Errorf("horizontal: peer holds %d p%d pairs, want %d", got, i, chains/peers)
			}
		}
	}
}

func TestIrrelevantBaseNeverMatchesWindowQuery(t *testing.T) {
	s := gen.NewSynthetic(6, false)
	irr := s.IrrelevantBase(3, 5)
	if irr.Len() == 0 {
		t.Fatal("irrelevant base is empty")
	}
	as := pattern.DeriveActiveSchema(irr, s.Schema)
	q := s.Query(1, 3)
	for _, qp := range q.Patterns {
		if pattern.Covers(s.Schema, as, qp, pattern.FullSubsumption) {
			t.Errorf("irrelevant base covers %s", qp.ID)
		}
	}
}

func TestActiveSchemasDerivation(t *testing.T) {
	s := gen.NewSynthetic(3, false)
	bases := s.Bases(3, 3, gen.Vertical)
	ass := gen.ActiveSchemas(s.Schema, bases)
	if len(ass) != 3 {
		t.Fatalf("derived %d active-schemas", len(ass))
	}
	total := 0
	for _, as := range ass {
		total += as.Size()
	}
	if total != 3 {
		t.Errorf("total advertised properties = %d, want 3 (one per peer)", total)
	}
}

func TestRandomQueriesDeterministic(t *testing.T) {
	s := gen.NewSynthetic(8, false)
	a := s.RandomQueries(5, 2, 42)
	b := s.RandomQueries(5, 2, 42)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("seeded generation not deterministic at %d", i)
		}
	}
	c := s.RandomQueries(5, 2, 43)
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestDistributionNames(t *testing.T) {
	if gen.Vertical.String() != "vertical" || gen.Horizontal.String() != "horizontal" ||
		gen.Mixed.String() != "mixed" {
		t.Error("distribution names wrong")
	}
	if fmt.Sprint(gen.Distribution(9)) == "" {
		t.Error("unknown distribution should render")
	}
}
