package faults

import (
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

// Script is a deterministic, hand-steered fault source for tests and
// experiments that need an exact failure at an exact delivery — "kill
// this peer after its second results packet" — rather than the seeded
// stochastic Injector. Rules are evaluated in order; the first rule
// whose window covers the delivery decides its fate.
type Script struct {
	mu    sync.Mutex
	rules []*ScriptRule
}

// ScriptRule matches deliveries and applies a fault over a window of
// matches. Zero-valued matcher fields match any endpoint or kind.
type ScriptRule struct {
	// From / To restrict the rule to deliveries with these endpoints.
	From, To pattern.PeerID
	// Kind restricts the rule to one message kind.
	Kind string
	// After skips the first After matching deliveries before faulting.
	After int
	// Count bounds how many deliveries are faulted; 0 means every
	// matching delivery from After onward (a permanent failure).
	Count int
	// Fault is injected into each delivery inside the window.
	Fault network.Fault

	matched int
}

// NewScript builds a script from rules, evaluated in order.
func NewScript(rules ...*ScriptRule) *Script {
	return &Script{rules: rules}
}

// Add appends a rule.
func (s *Script) Add(r *ScriptRule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// Matched reports how many deliveries rule i has matched so far.
func (s *Script) Matched(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rules[i].matched
}

func (r *ScriptRule) matches(m network.Message) bool {
	if r.From != "" && m.From != r.From {
		return false
	}
	if r.To != "" && m.To != r.To {
		return false
	}
	if r.Kind != "" && m.Kind != r.Kind {
		return false
	}
	return true
}

// Intercept implements network.Injector.
func (s *Script) Intercept(m network.Message) network.Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules {
		if !r.matches(m) {
			continue
		}
		r.matched++
		nth := r.matched // 1-based
		if nth <= r.After {
			return network.Fault{}
		}
		if r.Count > 0 && nth > r.After+r.Count {
			return network.Fault{}
		}
		return r.Fault
	}
	return network.Fault{}
}
