// Package faults is the deterministic fault-injection layer wrapping
// internal/network: seeded, schedulable faults that reproduce the failure
// modes the paper's run-time adaptation (§2.5) and churn assumptions
// (§1/§3.2) are about — message drop, duplication, delay spikes, gray
// failure (a peer answers, but slower than any deadline tolerates),
// crash/restart, flapping links and partitions.
//
// Two layers compose:
//
//   - Injector implements network.Injector with per-message stochastic
//     faults. Decisions are a pure hash of (seed, edge, per-edge sequence
//     number), so a run that issues the same deliveries in the same order
//     — e.g. a sequential executor — draws the same faults, making whole
//     experiments byte-identical across reruns of one seed.
//   - Schedule is a precomputed, seeded timetable of node- and
//     link-level fault events (crash/restart, gray on/off, cut/heal)
//     applied between query rounds by the experiment harness.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

// Rates configures the per-delivery stochastic faults of an Injector.
// All probabilities are in [0, 1] and evaluated independently.
type Rates struct {
	// Drop is the probability a delivery is lost in transit.
	Drop float64
	// Duplicate is the probability a delivery arrives twice.
	Duplicate float64
	// DelaySpike is the probability a delivery suffers SpikeMS of extra
	// simulated latency.
	DelaySpike float64
	// SpikeMS is the magnitude of a delay spike.
	SpikeMS float64
}

// Scaled returns the rates with every probability multiplied by f
// (capped at 1), for sweeping a fault-intensity axis.
func (r Rates) Scaled(f float64) Rates {
	clamp := func(p float64) float64 {
		p *= f
		if p > 1 {
			return 1
		}
		return p
	}
	return Rates{Drop: clamp(r.Drop), Duplicate: clamp(r.Duplicate),
		DelaySpike: clamp(r.DelaySpike), SpikeMS: r.SpikeMS}
}

// Injector is the seeded network.Injector. Per-message decisions depend
// only on (seed, from, to, kind, edge sequence number), never on wall
// time, so deliveries issued in a deterministic order draw deterministic
// faults. Gray-failed nodes are tracked explicitly (usually driven by a
// Schedule): every leg touching a gray node gets GrayDelayMS of extra
// simulated latency, which a deadline-bearing sender experiences as a
// hang.
type Injector struct {
	seed  int64
	rates Rates

	mu      sync.Mutex
	edgeSeq map[string]uint64
	gray    map[pattern.PeerID]float64 // node -> extra delay per leg
	immune  map[string]bool            // message kinds never faulted
	stats   InjectorStats
}

// InjectorStats counts injected faults.
type InjectorStats struct {
	// Intercepted counts deliveries inspected.
	Intercepted int
	// Dropped, Duplicated, Delayed, Grayed count faults applied (one
	// delivery can be both delayed and grayed).
	Dropped, Duplicated, Delayed, Grayed int
}

// NewInjector returns a seeded injector with the given base rates.
func NewInjector(seed int64, rates Rates) *Injector {
	return &Injector{
		seed:    seed,
		rates:   rates,
		edgeSeq: map[string]uint64{},
		gray:    map[pattern.PeerID]float64{},
		immune:  map[string]bool{},
	}
}

// Exempt marks message kinds the injector must never fault (e.g. control
// traffic an experiment wants reliable).
func (in *Injector) Exempt(kinds ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, k := range kinds {
		in.immune[k] = true
	}
}

// SetGray marks a node gray-failed: every delivery touching it gains
// extraDelayMS of simulated latency until ClearGray.
func (in *Injector) SetGray(node pattern.PeerID, extraDelayMS float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.gray[node] = extraDelayMS
}

// ClearGray restores a gray-failed node.
func (in *Injector) ClearGray(node pattern.PeerID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.gray, node)
}

// Gray reports whether the node is currently gray-failed.
func (in *Injector) Gray(node pattern.PeerID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	_, ok := in.gray[node]
	return ok
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// draw maps (seed, edge, seq, salt) to a uniform float in [0, 1).
func (in *Injector) draw(edge string, seq uint64, salt string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%d\x00%s", in.seed, edge, seq, salt)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// Intercept implements network.Injector.
func (in *Injector) Intercept(m network.Message) network.Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Intercepted++
	var f network.Fault
	if g, ok := in.gray[m.From]; ok {
		f.ExtraDelayMS += g
		in.stats.Grayed++
	} else if g, ok := in.gray[m.To]; ok {
		f.ExtraDelayMS += g
		in.stats.Grayed++
	}
	if in.immune[m.Kind] {
		return f
	}
	edge := string(m.From) + "→" + string(m.To) + "/" + m.Kind
	seq := in.edgeSeq[edge]
	in.edgeSeq[edge] = seq + 1
	if in.rates.Drop > 0 && in.draw(edge, seq, "drop") < in.rates.Drop {
		f.Drop = true
		in.stats.Dropped++
		return f
	}
	if in.rates.Duplicate > 0 && in.draw(edge, seq, "dup") < in.rates.Duplicate {
		f.Duplicate = true
		in.stats.Duplicated++
	}
	if in.rates.DelaySpike > 0 && in.draw(edge, seq, "delay") < in.rates.DelaySpike {
		f.ExtraDelayMS += in.rates.SpikeMS
		in.stats.Delayed++
	}
	return f
}

// ScheduleRates configures the per-round node/link fault events a
// Schedule generates.
type ScheduleRates struct {
	// Crash is the per-node per-round probability of a crash; the node
	// restarts CrashLen rounds later.
	Crash float64
	// CrashLen is how many rounds a crashed node stays down (≥1).
	CrashLen int
	// Gray is the per-node per-round probability of entering gray
	// failure for GrayLen rounds, adding GrayDelayMS per delivery leg.
	Gray        float64
	GrayLen     int
	GrayDelayMS float64
	// Flap is the per-node per-round probability that the node's link to
	// the root is cut for one round (a flapping link).
	Flap float64
	// Partition is the per-node per-round probability that the node's
	// link to the root is cut for PartitionLen rounds before healing — a
	// held partition (vs Flap's one-round blip), long enough for failure
	// detection to confirm and for the heal path to be exercised.
	Partition float64
	// PartitionLen is how many rounds a held partition lasts (≥1).
	PartitionLen int
}

// Event is one scheduled fault transition.
type Event struct {
	// Round the event fires at (0-based).
	Round int
	// Kind is "crash", "restart", "gray-on", "gray-off", "cut" or "heal".
	Kind string
	// Node is the affected node.
	Node pattern.PeerID
	// Peer is the other endpoint for link events.
	Peer pattern.PeerID
}

// String renders the event.
func (e Event) String() string {
	if e.Kind == "cut" || e.Kind == "heal" {
		return fmt.Sprintf("r%d %s %s–%s", e.Round, e.Kind, e.Node, e.Peer)
	}
	return fmt.Sprintf("r%d %s %s", e.Round, e.Kind, e.Node)
}

// Effects reports what one round's Apply changed.
type Effects struct {
	Crashed, Restarted, GrayOn, GrayOff []pattern.PeerID
	Cut, Healed                         [][2]pattern.PeerID
}

// Schedule is a precomputed seeded timetable of fault events over a
// fixed set of volatile nodes. The root node is never faulted (it is the
// observer whose queries the experiment measures).
type Schedule struct {
	// Events in round order; ties ordered crash/restart before gray
	// before link events, then by node id.
	Events []Event

	rates  ScheduleRates
	root   pattern.PeerID
	byTurn map[int][]Event
}

// NewSchedule precomputes rounds of fault events for the volatile nodes
// using a seeded PRNG. The root is the query-issuing node flapping links
// are cut against; it never crashes or grays.
func NewSchedule(seed int64, root pattern.PeerID, volatile []pattern.PeerID, rounds int, rates ScheduleRates) *Schedule {
	if rates.CrashLen < 1 {
		rates.CrashLen = 2
	}
	if rates.GrayLen < 1 {
		rates.GrayLen = 2
	}
	if rates.GrayDelayMS <= 0 {
		rates.GrayDelayMS = 1000
	}
	if rates.PartitionLen < 1 {
		rates.PartitionLen = 3
	}
	rng := rand.New(rand.NewSource(seed))
	nodes := append([]pattern.PeerID{}, volatile...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	s := &Schedule{rates: rates, root: root, byTurn: map[int][]Event{}}
	// busyUntil prevents overlapping crash/gray episodes on one node, so
	// restarts and gray-offs pair cleanly with their onsets.
	busyUntil := map[pattern.PeerID]int{}
	add := func(e Event) {
		s.Events = append(s.Events, e)
		s.byTurn[e.Round] = append(s.byTurn[e.Round], e)
	}
	for round := 0; round < rounds; round++ {
		for _, node := range nodes {
			if busyUntil[node] > round {
				continue
			}
			switch {
			case rng.Float64() < rates.Crash:
				end := round + rates.CrashLen
				add(Event{Round: round, Kind: "crash", Node: node})
				add(Event{Round: end, Kind: "restart", Node: node})
				busyUntil[node] = end + 1
			case rng.Float64() < rates.Gray:
				end := round + rates.GrayLen
				add(Event{Round: round, Kind: "gray-on", Node: node})
				add(Event{Round: end, Kind: "gray-off", Node: node})
				busyUntil[node] = end + 1
			case rng.Float64() < rates.Flap:
				add(Event{Round: round, Kind: "cut", Node: node, Peer: root})
				add(Event{Round: round + 1, Kind: "heal", Node: node, Peer: root})
				busyUntil[node] = round + 2
			// The rate guard keeps the RNG stream of schedules that never
			// enabled partitions byte-identical to before the case existed:
			// a zero rate must consume no draw.
			case rates.Partition > 0 && rng.Float64() < rates.Partition:
				end := round + rates.PartitionLen
				add(Event{Round: round, Kind: "cut", Node: node, Peer: root})
				add(Event{Round: end, Kind: "heal", Node: node, Peer: root})
				busyUntil[node] = end + 1
			}
		}
	}
	return s
}

// Apply fires the round's events against the network and injector and
// returns what changed, so the harness can e.g. re-advertise restarted
// peers. Both arguments may be shared across rounds; Apply is not safe
// for concurrent use with itself.
func (s *Schedule) Apply(round int, net *network.Network, inj *Injector) Effects {
	var eff Effects
	for _, e := range s.byTurn[round] {
		switch e.Kind {
		case "crash":
			net.Fail(e.Node)
			eff.Crashed = append(eff.Crashed, e.Node)
		case "restart":
			net.Recover(e.Node)
			eff.Restarted = append(eff.Restarted, e.Node)
		case "gray-on":
			if inj != nil {
				inj.SetGray(e.Node, s.rates.GrayDelayMS)
			}
			eff.GrayOn = append(eff.GrayOn, e.Node)
		case "gray-off":
			if inj != nil {
				inj.ClearGray(e.Node)
			}
			eff.GrayOff = append(eff.GrayOff, e.Node)
		case "cut":
			net.Partition(e.Node, e.Peer)
			eff.Cut = append(eff.Cut, [2]pattern.PeerID{e.Node, e.Peer})
		case "heal":
			net.Heal(e.Node, e.Peer)
			eff.Healed = append(eff.Healed, [2]pattern.PeerID{e.Node, e.Peer})
		}
	}
	return eff
}
