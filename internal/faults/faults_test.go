package faults

import (
	"errors"
	"reflect"
	"testing"

	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
)

func twoNodeNet(t *testing.T) (*network.Network, *int) {
	t.Helper()
	net := network.New()
	delivered := 0
	net.Handle("A", "ping", func(network.Message) ([]byte, error) { return nil, nil })
	net.Handle("B", "ping", func(network.Message) ([]byte, error) {
		delivered++
		return []byte("pong"), nil
	})
	return net, &delivered
}

// Same seed, same delivery order → identical per-message fault decisions
// and identical stats.
func TestInjectorDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]bool, InjectorStats) {
		net, _ := twoNodeNet(t)
		inj := NewInjector(42, Rates{Drop: 0.3, Duplicate: 0.2, DelaySpike: 0.2, SpikeMS: 100})
		net.SetInjector(inj)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			err := net.Send("A", "B", "ping", []byte("x"))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, inj.Stats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("same seed produced different per-message outcomes")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("expected all fault kinds at these rates, got %+v", s1)
	}
}

func TestInjectorSeedChangesOutcomes(t *testing.T) {
	stats := func(seed int64) InjectorStats {
		net, _ := twoNodeNet(t)
		inj := NewInjector(seed, Rates{Drop: 0.3})
		net.SetInjector(inj)
		for i := 0; i < 100; i++ {
			_ = net.Send("A", "B", "ping", []byte("x"))
		}
		return inj.Stats()
	}
	if stats(1) == stats(2) {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestInjectorDropSurfacesTransientError(t *testing.T) {
	net, delivered := twoNodeNet(t)
	inj := NewInjector(7, Rates{Drop: 1})
	net.SetInjector(inj)
	err := net.Send("A", "B", "ping", []byte("x"))
	if err == nil {
		t.Fatal("expected drop error")
	}
	if !network.Transient(err) {
		t.Fatalf("drop should be transient, got %v", err)
	}
	if *delivered != 0 {
		t.Fatal("dropped message must not reach the handler")
	}
}

func TestInjectorDuplicateDeliversTwice(t *testing.T) {
	net, delivered := twoNodeNet(t)
	inj := NewInjector(7, Rates{Duplicate: 1})
	net.SetInjector(inj)
	if err := net.Send("A", "B", "ping", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if *delivered != 2 {
		t.Fatalf("duplicate fault should invoke the handler twice, got %d", *delivered)
	}
}

func TestGrayNodeMissesDeadline(t *testing.T) {
	net, delivered := twoNodeNet(t)
	inj := NewInjector(7, Rates{})
	net.SetInjector(inj)
	inj.SetGray("B", 500)
	err := net.SendWithin("A", "B", "ping", []byte("x"), 100)
	if err == nil {
		t.Fatal("gray peer should miss a 100ms deadline")
	}
	var de *network.DeliveryError
	if !network.Transient(err) {
		t.Fatalf("deadline miss should be transient, got %v (%v)", err, de)
	}
	if *delivered != 0 {
		t.Fatal("deadline-missed message must not reach the handler")
	}
	inj.ClearGray("B")
	if err := net.SendWithin("A", "B", "ping", []byte("x"), 100); err != nil {
		t.Fatalf("cleared gray node should deliver: %v", err)
	}
	if *delivered != 1 {
		t.Fatal("recovered delivery should reach the handler once")
	}
}

func TestExemptKindsNeverFaulted(t *testing.T) {
	net, delivered := twoNodeNet(t)
	inj := NewInjector(7, Rates{Drop: 1})
	inj.Exempt("ping")
	net.SetInjector(inj)
	for i := 0; i < 20; i++ {
		if err := net.Send("A", "B", "ping", []byte("x")); err != nil {
			t.Fatalf("exempt kind faulted: %v", err)
		}
	}
	if *delivered != 20 {
		t.Fatalf("want 20 deliveries, got %d", *delivered)
	}
}

func TestScheduleDeterministicAndPaired(t *testing.T) {
	vol := []pattern.PeerID{"P2", "P3", "P4"}
	rates := ScheduleRates{Crash: 0.2, CrashLen: 2, Gray: 0.2, GrayLen: 1, Flap: 0.2}
	s1 := NewSchedule(99, "P1", vol, 30, rates)
	s2 := NewSchedule(99, "P1", vol, 30, rates)
	if !reflect.DeepEqual(s1.Events, s2.Events) {
		t.Fatal("same seed produced different schedules")
	}
	if len(s1.Events) == 0 {
		t.Fatal("expected some events at 20% rates over 30 rounds")
	}
	// Every onset has exactly one matching offset per node, so a full
	// replay returns the system to health.
	balance := map[string]int{}
	for _, e := range s1.Events {
		switch e.Kind {
		case "crash":
			balance["down/"+string(e.Node)]++
		case "restart":
			balance["down/"+string(e.Node)]--
		case "gray-on":
			balance["gray/"+string(e.Node)]++
		case "gray-off":
			balance["gray/"+string(e.Node)]--
		case "cut":
			balance["cut/"+string(e.Node)]++
		case "heal":
			balance["cut/"+string(e.Node)]--
		}
		if e.Node == "P1" {
			t.Fatalf("root must never be faulted: %v", e)
		}
	}
	for k, v := range balance {
		if v != 0 {
			t.Fatalf("unbalanced fault episodes for %s: %d", k, v)
		}
	}
}

func TestScheduleApplyDrivesNetworkAndInjector(t *testing.T) {
	net := network.New()
	for _, id := range []pattern.PeerID{"P1", "P2"} {
		net.AddNode(id)
	}
	inj := NewInjector(1, Rates{})
	s := &Schedule{rates: ScheduleRates{GrayDelayMS: 400}, root: "P1", byTurn: map[int][]Event{
		0: {
			{Round: 0, Kind: "crash", Node: "P2"},
			{Round: 0, Kind: "gray-on", Node: "P2"},
			{Round: 0, Kind: "cut", Node: "P2", Peer: "P1"},
		},
		1: {
			{Round: 1, Kind: "restart", Node: "P2"},
			{Round: 1, Kind: "gray-off", Node: "P2"},
			{Round: 1, Kind: "heal", Node: "P2", Peer: "P1"},
		},
	}}
	eff := s.Apply(0, net, inj)
	if len(eff.Crashed) != 1 || len(eff.GrayOn) != 1 || len(eff.Cut) != 1 {
		t.Fatalf("round 0 effects wrong: %+v", eff)
	}
	if !net.IsDown("P2") || !inj.Gray("P2") {
		t.Fatal("round 0 should crash and gray P2")
	}
	eff = s.Apply(1, net, inj)
	if len(eff.Restarted) != 1 || len(eff.GrayOff) != 1 || len(eff.Healed) != 1 {
		t.Fatalf("round 1 effects wrong: %+v", eff)
	}
	if net.IsDown("P2") || inj.Gray("P2") {
		t.Fatal("round 1 should restore P2")
	}
}

// Partition-heal events: a held partition cuts a node from the root for
// PartitionLen rounds, heals symmetrically, and the healed link delivers
// again — the schedule-level regression for the membership heal path.
func TestSchedulePartitionHealEvents(t *testing.T) {
	vol := []pattern.PeerID{"P2", "P3", "P4"}
	rates := ScheduleRates{Partition: 0.3, PartitionLen: 4}
	s1 := NewSchedule(7, "P1", vol, 30, rates)
	s2 := NewSchedule(7, "P1", vol, 30, rates)
	if !reflect.DeepEqual(s1.Events, s2.Events) {
		t.Fatal("same seed produced different partition schedules")
	}
	cuts := map[pattern.PeerID][]int{}
	heals := map[pattern.PeerID][]int{}
	for _, e := range s1.Events {
		switch e.Kind {
		case "cut":
			cuts[e.Node] = append(cuts[e.Node], e.Round)
		case "heal":
			heals[e.Node] = append(heals[e.Node], e.Round)
		default:
			t.Fatalf("partition-only rates produced %v", e)
		}
		if e.Peer != "P1" {
			t.Fatalf("partition must be against the root: %v", e)
		}
	}
	if len(cuts) == 0 {
		t.Fatal("expected partitions at 30% over 30 rounds")
	}
	for node, on := range cuts {
		off := heals[node]
		if len(on) != len(off) {
			t.Fatalf("%s: %d cuts but %d heals", node, len(on), len(off))
		}
		for i := range on {
			if off[i]-on[i] != 4 {
				t.Fatalf("%s: partition %d lasted %d rounds, want 4", node, i, off[i]-on[i])
			}
		}
	}

	// Apply round-trip: the cut blocks delivery with a partition error,
	// the heal restores it.
	net := network.New()
	for _, id := range []pattern.PeerID{"P1", "P2"} {
		net.AddNode(id)
	}
	net.Handle("P2", "echo", func(m network.Message) ([]byte, error) { return m.Payload, nil })
	one := &Schedule{rates: rates, root: "P1", byTurn: map[int][]Event{
		0: {{Round: 0, Kind: "cut", Node: "P2", Peer: "P1"}},
		4: {{Round: 4, Kind: "heal", Node: "P2", Peer: "P1"}},
	}}
	one.Apply(0, net, nil)
	_, err := net.CallWithin("P1", "P2", "echo", []byte("x"), 200)
	var de *network.DeliveryError
	if !errors.As(err, &de) || de.Reason != network.ReasonPartition {
		t.Fatalf("cut link should fail with partition, got %v", err)
	}
	one.Apply(4, net, nil)
	if _, err := net.CallWithin("P1", "P2", "echo", []byte("x"), 200); err != nil {
		t.Fatalf("healed link should deliver again: %v", err)
	}
}
