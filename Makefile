# Developer entry points. `make check` is the gate the CI (and every PR)
# must pass: vet plus the full suite under the race detector.

GO ?= go

.PHONY: build test check bench bench-json fault clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable before/after numbers for the routing index and the
# parallel executor (see cmd/sqpeer-bench/benchjson.go).
bench-json:
	$(GO) run ./cmd/sqpeer-bench -bench-json BENCH_PR1.json

# Fault suite: the chaos soak test under the race detector plus the
# seeded CLAIM-FAULT sweep, which rewrites BENCH_PR2.json. Both are
# fully deterministic (fixed seeds baked into the code).
fault:
	$(GO) test -race -run TestChaosSoak ./internal/exec/
	$(GO) run ./cmd/sqpeer-bench -exp fault

clean:
	$(GO) clean ./...
