# Developer entry points. `make check` is the gate the CI (and every PR)
# must pass: vet plus the full suite under the race detector.

GO ?= go

.PHONY: build test lint check bench bench-json batch fault trace overload member observe clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis: the toolchain's standard passes (go vet: copylocks,
# printf, ...) plus the eleven SQPeer invariant analyzers — seven
# intraprocedural (walltime, seededrand, maporder, errclass, locksafe,
# obsspan, jsonrow) and four interprocedural (lockorder, bufsafe,
# deadlinebound, goroleak) — see DESIGN.md §9. Zero un-allowlisted
# diagnostics is a merge gate. The interprocedural tier's per-package
# summaries persist in .lintcache/ so repeat runs only re-summarize
# what changed; the per-analyzer cost report lands in lint-report.txt.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sqpeer-lint -summary-cache .lintcache -report lint-report.txt ./...

check: lint
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable before/after numbers for the routing index and the
# parallel executor (see cmd/sqpeer-bench/benchjson.go).
bench-json:
	$(GO) run ./cmd/sqpeer-bench -bench-json BENCH_PR1.json

# Batch data plane: the CLAIM-BATCH columnar-vs-RowWire sweep at
# headline sizes (rewrites BENCH_PR6.json), gated against the committed
# baseline — the run fails if the batch plane's allocs/row regresses
# >20% at any matching sweep point. See DESIGN.md §12.
batch:
	$(GO) run ./cmd/sqpeer-bench -exp batch -alloc-baseline BENCH_PR6.json

# Fault suite: the chaos soak test (both recovery modes: migration and
# the NoMigrations restart ablation) under the race detector, the seeded
# CLAIM-FAULT sweep (rewrites BENCH_PR2.json), and the CLAIM-RECOVER
# migration-vs-restart experiment under -race (rewrites BENCH_PR4.json).
# All fully deterministic (fixed seeds baked into the code).
fault:
	$(GO) test -race -run TestChaosSoak ./internal/exec/
	$(GO) run ./cmd/sqpeer-bench -exp fault
	$(GO) run -race ./cmd/sqpeer-bench -exp recover

# Overload suite: the concurrent multi-tenant admission soak under the
# race detector (explicit-Done controllers, watchdog, occupancy-drain
# and goroutine-leak checks), then the deterministic CLAIM-OVERLOAD
# sweep — 2× sustained overload, priority shedding, hot-advertisement
# replication, rate-bound fairness and the admission-off ablation
# (rewrites BENCH_PR7.json). See DESIGN.md §13.
overload:
	$(GO) test -race -run TestOverloadSoak ./internal/exec/
	$(GO) run ./cmd/sqpeer-bench -exp overload

# Membership suite: the decentralized-membership unit tests (SWIM
# detector + anti-entropy) under the race detector, then the
# deterministic CLAIM-MEMBER experiment under -race — bounded bootstrap
# convergence, detection latency under seeded churn + 10% faults,
# partition degradation to annotated partial answers, post-heal
# reconvergence to oracle-equal views, byte-identical reruns (rewrites
# BENCH_PR9.json). See DESIGN.md §14.
member:
	$(GO) test -race ./internal/membership/
	$(GO) run -race ./cmd/sqpeer-bench -exp member

# Operations plane: the obs/debugsrv unit tests (event log, flight
# recorder, SLO evaluator, Prometheus exposition, HTTP endpoints) under
# the race detector, then the deterministic CLAIM-OBSERVE experiment
# under -race — byte-identical event-log reruns, exact event↔counter
# reconciliation, anomaly-triggered post-mortem dumps, SLO burn-rate
# alerts and the plane-off overhead ablation (rewrites BENCH_PR10.json
# and the sample dump bundle FLIGHTREC_PR10.json). See DESIGN.md §15.
observe:
	$(GO) test -race ./internal/obs/ ./internal/debugsrv/
	$(GO) run -race ./cmd/sqpeer-bench -exp observe

# Observability: the CLAIM-TRACE experiment (rewrites BENCH_PR5.json)
# plus a captured chrome://tracing file for the paper query — open
# trace.json in chrome://tracing or Perfetto; trace.jsonl is the
# byte-stable span listing (diffable across same-scenario runs).
trace:
	$(GO) run ./cmd/sqpeer-bench -exp trace
	$(GO) run ./cmd/sqpeer-bench -trace trace.json

clean:
	$(GO) clean ./...
