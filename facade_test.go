// Tests for the public facade: every exported constructor and helper is
// exercised the way a downstream application would use it.
package sqpeer_test

import (
	"fmt"
	"strings"
	"testing"

	"sqpeer"
)

const facadeNS = "http://facade.example/s#"

func fs(local string) sqpeer.IRI { return sqpeer.IRI(facadeNS + local) }

func facadeSchema(t testing.TB) *sqpeer.Schema {
	t.Helper()
	s := sqpeer.NewSchema(facadeNS)
	for _, c := range []string{"Author", "Doc", "Tag"} {
		s.MustAddClass(fs(c))
	}
	s.MustAddProperty(fs("wrote"), fs("Author"), fs("Doc"))
	s.MustAddProperty(fs("tagged"), fs("Doc"), fs("Tag"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFacadeSchemaAndBaseConstruction(t *testing.T) {
	schema := facadeSchema(t)
	base := sqpeer.NewBase()
	base.Add(sqpeer.Statement("http://d#a", fs("wrote"), "http://d#doc"))
	base.Add(sqpeer.Typing("http://d#a", fs("Author")))
	base.Add(sqpeer.Triple{
		S: sqpeer.NewIRITerm("http://d#doc"),
		P: sqpeer.NewIRITerm(fs("tagged")),
		O: sqpeer.NewLiteralTerm("p2p"),
	})
	if base.Len() != 3 {
		t.Fatalf("Len = %d", base.Len())
	}
	as := sqpeer.DeriveActiveSchema(base, schema)
	if !as.HasProperty(fs("wrote")) || !as.HasProperty(fs("tagged")) {
		t.Errorf("active-schema = %s", as)
	}
}

func TestFacadeIOHelpers(t *testing.T) {
	schema := facadeSchema(t)
	var sb strings.Builder
	if err := sqpeer.WriteSchemaText(&sb, schema); err != nil {
		t.Fatal(err)
	}
	back, err := sqpeer.ParseSchemaText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseSchemaText: %v\n%s", err, sb.String())
	}
	if len(back.Properties()) != 2 {
		t.Errorf("round-trip properties = %d", len(back.Properties()))
	}

	base := sqpeer.NewBase()
	base.Add(sqpeer.Statement("http://d#a", fs("wrote"), "http://d#doc"))
	var bb strings.Builder
	if err := sqpeer.WriteBase(&bb, base); err != nil {
		t.Fatal(err)
	}
	base2, err := sqpeer.ReadBase(strings.NewReader(bb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if base2.Len() != 1 {
		t.Errorf("base round trip = %d triples", base2.Len())
	}
}

func TestFacadeRQLAndRVL(t *testing.T) {
	schema := facadeSchema(t)
	q, err := sqpeer.ParseRQL(
		`SELECT A FROM {A}s:wrote{D}, {D}s:tagged{T} USING NAMESPACE s = &`+facadeNS+`&`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Pattern.Patterns) != 2 {
		t.Errorf("pattern = %s", q.Pattern)
	}
	views, err := sqpeer.ParseRVL(
		`VIEW s:wrote(A, D) FROM {A}s:wrote{D} USING NAMESPACE s = &`+facadeNS+`&`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !views[0].ActiveSchema().HasProperty(fs("wrote")) {
		t.Error("view active-schema wrong")
	}

	base := sqpeer.NewBase()
	base.Add(sqpeer.Statement("http://d#a", fs("wrote"), "http://d#doc"))
	base.Add(sqpeer.Statement("http://d#doc", fs("tagged"), "http://d#tag"))
	rows, err := sqpeer.EvalLocal(q, base)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("EvalLocal = %d rows", rows.Len())
	}
}

func TestFacadeCostModelAndPolicies(t *testing.T) {
	cat := sqpeer.NewCatalog()
	cat.PutPeer(&sqpeer.PeerStats{Peer: "P2", Slots: 4,
		PropertyCard: map[sqpeer.IRI]int{fs("wrote"): 10}})
	cat.PutLink("P1", "P2", sqpeer.Link{LatencyMS: 5, BandwidthKBps: 100})
	cm := sqpeer.NewCostModel(cat)
	if cm == nil {
		t.Fatal("nil cost model")
	}
	for _, p := range []sqpeer.ShippingPolicy{sqpeer.DataShipping, sqpeer.QueryShipping, sqpeer.HybridShipping} {
		if p.String() == "" {
			t.Error("policy renders empty")
		}
	}
}

func TestFacadeSwimHelpers(t *testing.T) {
	store, err := sqpeer.ParseXML(`<r><e a="1"/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Elements("e")) != 1 {
		t.Error("XML navigation failed")
	}
	db := sqpeer.NewRelationalDB()
	tab := sqpeer.NewRelationalTable("t", "a", "b")
	tab.MustInsert("x", "y")
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Table("t"); n.Len() != 1 {
		t.Error("relational helpers failed")
	}
}

func TestFacadeKindsAndNamespaces(t *testing.T) {
	if sqpeer.ClientPeer.String() != "client-peer" || sqpeer.SuperPeer.String() != "super-peer" {
		t.Error("peer kinds wrong")
	}
	ns := sqpeer.NewNamespaces()
	ns.Bind("s", facadeNS)
	if iri, err := ns.Expand("s:Doc"); err != nil || iri != fs("Doc") {
		t.Errorf("Expand = %q, %v", iri, err)
	}
}

func TestFacadeAdhocAndFlooding(t *testing.T) {
	schema := sqpeer.PaperSchema()
	net := sqpeer.NewNetwork()
	adhoc := sqpeer.NewAdhocSON(net, schema)
	base := sqpeer.NewBase()
	n1 := func(l string) sqpeer.IRI { return sqpeer.IRI("http://ics.forth.gr/SON/n1#" + l) }
	base.Add(sqpeer.Statement("http://d#a", n1("prop1"), "http://d#b"))
	base.Add(sqpeer.Statement("http://d#b", n1("prop2"), "http://d#c"))
	if _, err := adhoc.AddPeer("A1", base); err != nil {
		t.Fatal(err)
	}
	rows, err := adhoc.Query("A1", sqpeer.PaperRQL)
	if err != nil || rows.Len() != 1 {
		t.Errorf("adhoc facade query: %v rows=%d", err, rows.Len())
	}

	fnet := sqpeer.NewNetwork()
	flood := sqpeer.NewFloodingNetwork(fnet, schema)
	if _, err := flood.AddPeer("F1", base.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := flood.Query("F1", sqpeer.PaperRQL, 2)
	if err != nil || res.Rows.Len() != 1 {
		t.Errorf("flooding facade query: %v", err)
	}
}

func TestFacadePeerConstruction(t *testing.T) {
	net := sqpeer.NewNetwork()
	p, err := sqpeer.NewPeer(sqpeer.PeerConfig{
		ID: "PF", Kind: sqpeer.SimplePeer, Schema: facadeSchema(t),
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	adv := p.Advertisement()
	if adv.Peer != "PF" {
		t.Errorf("advertisement = %+v", adv)
	}
	q := sqpeer.PaperQuery()
	ann := sqpeer.NewAnnotatedPattern(q)
	ann.Annotate("Q1", "PF", nil)
	if got := fmt.Sprint(ann.PeersFor("Q1")); got != "[PF]" {
		t.Errorf("annotation = %s", got)
	}
}
