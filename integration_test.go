// Cross-module integration tests: the same workload must produce the same
// answers through every architecture, legacy bases must participate in
// SONs transparently, and the full experiment harness must reproduce all
// of the paper's figures and claims.
package sqpeer_test

import (
	"fmt"
	"testing"

	"sqpeer"
	"sqpeer/internal/gen"
	"sqpeer/internal/harness"
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

// TestArchitecturesAgreeOnAnswers runs the same chain query over the same
// data under the hybrid and the ad-hoc architectures (all distributions)
// and checks both match the centralized ground truth.
func TestArchitecturesAgreeOnAnswers(t *testing.T) {
	for _, dist := range []gen.Distribution{gen.Vertical, gen.Horizontal, gen.Mixed} {
		t.Run(dist.String(), func(t *testing.T) {
			syn := gen.NewSynthetic(4, false)
			const peers, chains = 4, 10
			bases := syn.Bases(peers, chains, dist)
			query := syn.RQL(1, 4)

			// Ground truth: centralized evaluation over the union.
			merged := rdf.NewBase()
			for _, b := range bases {
				for _, tr := range b.Triples() {
					merged.Add(tr)
				}
			}
			c, err := rql.ParseAndAnalyze(query, syn.Schema)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := rql.Eval(c, merged)
			if err != nil {
				t.Fatal(err)
			}
			if truth.Len() != chains {
				t.Fatalf("ground truth = %d rows, want %d", truth.Len(), chains)
			}

			// Hybrid.
			hnet := network.New()
			h := overlay.NewHybrid(hnet, syn.Schema)
			if _, err := h.AddSuperPeer("SP"); err != nil {
				t.Fatal(err)
			}
			var first pattern.PeerID
			for id, base := range bases {
				if _, err := h.AddSimplePeer(id, base.Clone(), "SP"); err != nil {
					t.Fatal(err)
				}
				if first == "" || id < first {
					first = id
				}
			}
			hybridRows, err := h.Query(first, query)
			if err != nil {
				t.Fatalf("hybrid: %v", err)
			}

			// Ad-hoc on a line topology.
			anet := network.New()
			a := overlay.NewAdhoc(anet, syn.Schema)
			var prev pattern.PeerID
			ids := sortedIDs(bases)
			for _, id := range ids {
				var nbrs []pattern.PeerID
				if prev != "" {
					nbrs = append(nbrs, prev)
				}
				if _, err := a.AddPeer(id, bases[id].Clone(), nbrs...); err != nil {
					t.Fatal(err)
				}
				prev = id
			}
			// Give every peer 3-depth knowledge so line topologies route.
			for _, id := range ids {
				if _, err := a.ExpandNeighborhood(id, 3); err != nil {
					t.Fatal(err)
				}
			}
			adhocRows, err := a.Query(ids[0], query)
			if err != nil {
				t.Fatalf("adhoc: %v", err)
			}

			want := fmt.Sprint(truth.Sorted())
			if got := fmt.Sprint(hybridRows.Sorted()); got != want {
				t.Errorf("hybrid ≠ truth:\n%v\n%v", got, want)
			}
			if got := fmt.Sprint(adhocRows.Sorted()); got != want {
				t.Errorf("adhoc ≠ truth:\n%v\n%v", got, want)
			}
		})
	}
}

func sortedIDs(m map[pattern.PeerID]*rdf.Base) []pattern.PeerID {
	out := make([]pattern.PeerID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestSwimPeerParticipatesInSON puts a virtual (relational-backed) peer
// into a hybrid SON next to materialized peers and checks that queries
// spanning both answer correctly.
func TestSwimPeerParticipatesInSON(t *testing.T) {
	schema := sqpeer.PaperSchema()
	net := sqpeer.NewNetwork()
	son := sqpeer.NewHybridSON(net, schema)
	if _, err := son.AddSuperPeer("SP1"); err != nil {
		t.Fatal(err)
	}

	// Materialized peer holding prop1 pairs.
	mat := sqpeer.NewBase()
	for i := 0; i < 3; i++ {
		x := sqpeer.IRI(fmt.Sprintf("http://mat#x%d", i))
		y := sqpeer.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
		mat.Add(sqpeer.Statement(x, gen.N1("prop1"), y))
	}
	if _, err := son.AddSimplePeer("MAT", mat, "SP1"); err != nil {
		t.Fatal(err)
	}

	// Virtual peer: prop2 pairs from a relational table.
	db := sqpeer.NewRelationalDB()
	tab := sqpeer.NewRelationalTable("links", "src", "dst")
	for i := 0; i < 3; i++ {
		tab.MustInsert(fmt.Sprintf("y%d", i), fmt.Sprintf("z%d", i))
	}
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	vb := &sqpeer.VirtualBase{
		Schema: schema, DB: db,
		RelMappings: []sqpeer.RelationalMapping{{
			Table: "links", SubjectColumn: "src", ObjectColumn: "dst",
			SubjectPrefix: "http://ics.forth.gr/data/shared#",
			ObjectPrefix:  "http://virt#",
			Property:      gen.N1("prop2"),
		}},
	}
	virtBase, err := vb.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := son.AddSimplePeer("VIRT", virtBase, "SP1"); err != nil {
		t.Fatal(err)
	}

	rows, err := son.Query("MAT", sqpeer.PaperRQL)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Errorf("cross-legacy join = %d rows, want 3:\n%s", rows.Len(), rows)
	}
}

// TestHarnessReproducesEveryExperiment runs the full experiment suite and
// requires every figure and claim to reproduce.
func TestHarnessReproducesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("harness suite skipped in -short mode")
	}
	for _, r := range harness.All() {
		if !r.Pass {
			t.Errorf("experiment %s failed:\n%s", r.ID, r)
		}
	}
	if got := len(harness.IDs()); got != 23 {
		t.Errorf("expected 23 experiments, have %d", got)
	}
}

// TestFacadeQuickstart exercises the public API end to end the way the
// README shows it.
func TestFacadeQuickstart(t *testing.T) {
	schema := sqpeer.PaperSchema()
	net := sqpeer.NewNetwork()
	son := sqpeer.NewHybridSON(net, schema)
	if _, err := son.AddSuperPeer("SP1"); err != nil {
		t.Fatal(err)
	}
	base := sqpeer.NewBase()
	base.Add(sqpeer.Statement("http://d#a", gen.N1("prop1"), "http://d#b"))
	base.Add(sqpeer.Statement("http://d#b", gen.N1("prop2"), "http://d#c"))
	if _, err := son.AddSimplePeer("P1", base, "SP1"); err != nil {
		t.Fatal(err)
	}
	rows, err := son.Query("P1", sqpeer.PaperRQL)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("facade quickstart = %d rows:\n%s", rows.Len(), rows)
	}

	// Facade parse + local evaluation.
	c, err := sqpeer.ParseRQL(sqpeer.PaperRQL, schema)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sqpeer.EvalLocal(c, base)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(local.Sorted()) != fmt.Sprint(rows.Sorted()) {
		t.Error("facade local evaluation disagrees with SON answer")
	}

	// Facade plan helpers.
	reg := sqpeer.NewRegistry()
	reg.Register("P1", sqpeer.DeriveActiveSchema(base, schema))
	router := sqpeer.NewRouter(schema, reg)
	ann := router.Route(c.Pattern)
	p, err := sqpeer.GeneratePlan(ann)
	if err != nil {
		t.Fatal(err)
	}
	opt := sqpeer.OptimizePlan(p, sqpeer.OptimizerOptions{})
	if opt.String() != "[Q1⋈Q2]@P1" {
		t.Errorf("optimized single-peer plan = %s", opt)
	}
	if sqpeer.IndentPlan(opt) == "" {
		t.Error("IndentPlan empty")
	}
}
