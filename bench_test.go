// Benchmarks regenerating the paper's evaluation artifacts, one per
// figure plus the quantified claims (see DESIGN.md §4). Run with:
//
//	go test -bench=. -benchmem
package sqpeer_test

import (
	"fmt"
	"testing"

	"sqpeer/internal/dht"
	"sqpeer/internal/gen"
	"sqpeer/internal/mediate"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
	"sqpeer/internal/rvl"
	"sqpeer/internal/stats"
)

// benchPaperSystem builds the Figure-2 peers with full mutual knowledge.
func benchPaperSystem(b *testing.B, pairs int) (map[pattern.PeerID]*peer.Peer, *network.Network) {
	b.Helper()
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id]}, net)
		if err != nil {
			b.Fatal(err)
		}
		peers[id] = p
	}
	for _, x := range peers {
		for _, y := range peers {
			if x != y {
				x.Learn(y.Advertisement())
			}
		}
	}
	return peers, net
}

// BenchmarkFig1PatternExtraction measures the RQL front end: parse +
// semantic analysis + query-pattern extraction of the Figure-1 query.
func BenchmarkFig1PatternExtraction(b *testing.B) {
	schema := gen.PaperSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rql.ParseAndAnalyze(gen.PaperRQL, schema); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1ViewDerivation measures RVL analysis + active-schema
// derivation of the Figure-1 advertisement.
func BenchmarkFig1ViewDerivation(b *testing.B) {
	schema := gen.PaperSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		views, err := rvl.ParseAndAnalyze(gen.PaperRVL, schema)
		if err != nil {
			b.Fatal(err)
		}
		if views[0].ActiveSchema().Size() != 1 {
			b.Fatal("wrong active-schema")
		}
	}
}

// benchRoutingSetup builds the FIG-2 routing workload at SON size n:
// the paper's fixture for n=4, the synthetic chain SON otherwise. With
// indexed set, the registry maintains the inverted property index.
func benchRoutingSetup(n int, indexed bool) (*routing.Router, *pattern.QueryPattern) {
	var reg *routing.Registry
	var schema *rdf.Schema
	var q *pattern.QueryPattern
	newReg := func(s *rdf.Schema) *routing.Registry {
		if indexed {
			return routing.NewIndexedRegistry(s)
		}
		return routing.NewRegistry()
	}
	if n == 4 {
		schema = gen.PaperSchema()
		reg = newReg(schema)
		for id, as := range gen.PaperActiveSchemas() {
			reg.Register(id, as)
		}
		q = gen.PaperQuery()
	} else {
		syn := gen.NewSynthetic(8, true)
		schema = syn.Schema
		reg = newReg(schema)
		for id, as := range gen.ActiveSchemas(syn.Schema, syn.Bases(n, n, gen.Vertical)) {
			reg.Register(id, as)
		}
		q = syn.Query(1, 3)
	}
	return routing.NewRouter(schema, reg), q
}

// BenchmarkFig2Routing measures the Query-Routing Algorithm across SON
// sizes (the FIG-2 sweep): per-route latency with n registered peers,
// using the paper's literal brute-force triple loop.
func BenchmarkFig2Routing(b *testing.B) {
	for _, n := range []int{4, 10, 100, 500, 1000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			router, q := benchRoutingSetup(n, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				router.Route(q)
			}
		})
	}
}

// BenchmarkFig2RoutingIndexed is the same sweep over the inverted-index
// routing path (large-SON sizes included); compare against
// BenchmarkFig2Routing for the index's speedup.
func BenchmarkFig2RoutingIndexed(b *testing.B) {
	for _, n := range []int{4, 10, 100, 500, 1000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			router, q := benchRoutingSetup(n, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				router.Route(q)
			}
		})
	}
}

// BenchmarkFig3PlanGeneration measures the Query-Processing Algorithm:
// annotated pattern → distributed plan.
func BenchmarkFig3PlanGeneration(b *testing.B) {
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Generate(ann); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Execution measures end-to-end distributed execution of
// Figure 3's plan (channel deployment, subplan shipping, union+join)
// across branch-parallelism levels: parallelism=1 is the sequential
// baseline, higher levels fan the independent union branches (§2.4
// horizontal distribution) across the worker pool. Links sleep a
// compressed version of their accounted transfer time, so overlapping the
// independent remote scans shows up as wall-clock savings — the whole
// point of horizontal distribution.
func BenchmarkFig3Execution(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			peers, net := benchPaperSystem(b, 20)
			net.SetRealLatency(0.2) // 20ms default link latency → ~4ms slept
			p1 := peers["P1"]
			p1.Engine.Parallelism = par
			pr, err := p1.PlanQuery(gen.PaperQuery())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p1.Engine.Execute(pr.Raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Optimization measures the compile-time rewrite pipeline
// (join-over-union distribution + transformation rules) on Plan 1.
func BenchmarkFig4Optimization(b *testing.B) {
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p1, err := plan.Generate(ann)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		optimizer.Optimize(p1, optimizer.Options{})
	}
}

// BenchmarkFig4AblationDistributionOnly isolates the distribution rewrite
// for the ablation called out in DESIGN.md §5.
func BenchmarkFig4AblationDistributionOnly(b *testing.B) {
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	ann := routing.NewRouter(gen.PaperSchema(), reg).Route(gen.PaperQuery())
	p1, err := plan.Generate(ann)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		optimizer.Optimize(p1, optimizer.Options{SkipMergeRules: true})
	}
}

// BenchmarkFig5Shipping measures cost estimation and the compile-time
// shipping-policy choice for the Figure-5 plan.
func BenchmarkFig5Shipping(b *testing.B) {
	cat := stats.NewCatalog()
	for _, id := range []pattern.PeerID{"P1", "P2", "P3"} {
		cat.PutPeer(&stats.PeerStats{Peer: id, Slots: 4,
			PropertyCard:     map[rdf.IRI]int{gen.N1("prop1"): 1000, gen.N1("prop2"): 1000},
			DistinctSubjects: map[rdf.IRI]int{gen.N1("prop1"): 1000, gen.N1("prop2"): 1000},
			DistinctObjects:  map[rdf.IRI]int{gen.N1("prop1"): 1000, gen.N1("prop2"): 1000}})
	}
	cat.PutLink("P1", "P3", stats.Link{LatencyMS: 500, BandwidthKBps: 10})
	cm := optimizer.NewCostModel(cat)
	q := gen.PaperQuery()
	root := plan.NewJoin(plan.NewScan(q.Patterns[0], "P2"), plan.NewScan(q.Patterns[1], "P3"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if pol, _ := cm.ChoosePolicy(root, "P1"); pol == optimizer.DataShipping {
			b.Fatal("unexpected policy under slow root link")
		}
	}
}

// BenchmarkFig6Hybrid measures a full hybrid query (two-phase: routing at
// the super-peer, processing at the asking peer) across cluster sizes.
func BenchmarkFig6Hybrid(b *testing.B) {
	for _, n := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("cluster=%d", n), func(b *testing.B) {
			net := network.New()
			h := overlay.NewHybrid(net, gen.PaperSchema())
			if _, err := h.AddSuperPeer("SP1"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				id := pattern.PeerID(fmt.Sprintf("N%03d", i))
				base := rdf.NewBase()
				switch i % 5 {
				case 1:
					base = benchRoleBase(string(id), 2, "prop1")
				case 2:
					base = benchRoleBase(string(id), 2, "prop2")
				case 3:
					base = benchRoleBase(string(id), 2, "prop3")
				}
				if _, err := h.AddSimplePeer(id, base, "SP1"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Query("N000", gen.PaperRQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7AdHoc measures the interleaved routing/processing path: a
// partial plan forwarded once before completion.
func BenchmarkFig7AdHoc(b *testing.B) {
	net := network.New()
	a := overlay.NewAdhoc(net, gen.PaperSchema())
	mustAdd := func(id pattern.PeerID, base *rdf.Base, nbrs ...pattern.PeerID) {
		if _, err := a.AddPeer(id, base, nbrs...); err != nil {
			b.Fatal(err)
		}
	}
	mustAdd("P1", rdf.NewBase())
	mustAdd("P2", benchRoleBase("P2", 3, "prop1"), "P1")
	mustAdd("P3", benchRoleBase("P3", 3, "prop1"), "P1")
	mustAdd("P5", benchRoleBase("P5", 3, "prop2"), "P2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := a.Query("P1", gen.PaperRQL)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() != 6 {
			b.Fatalf("rows = %d", rows.Len())
		}
	}
}

// BenchmarkClaimSONvsFlooding compares the messages of one query under
// SON routing and under flooding on the same 50-peer population.
func BenchmarkClaimSONvsFlooding(b *testing.B) {
	b.Run("son", func(b *testing.B) {
		net := network.New()
		h := overlay.NewHybrid(net, gen.PaperSchema())
		if _, err := h.AddSuperPeer("SP1"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			id := pattern.PeerID(fmt.Sprintf("N%03d", i))
			if _, err := h.AddSimplePeer(id, benchClaimBase(i, string(id)), "SP1"); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.Query("N000", gen.PaperRQL); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(net.Counters().Messages)/float64(b.N), "msgs/query")
	})
	b.Run("flooding", func(b *testing.B) {
		net := network.New()
		f := overlay.NewFlooding(net, gen.PaperSchema())
		for i := 0; i < 50; i++ {
			id := pattern.PeerID(fmt.Sprintf("N%03d", i))
			var nbrs []pattern.PeerID
			if i > 0 {
				nbrs = append(nbrs, pattern.PeerID(fmt.Sprintf("N%03d", i-1)))
			}
			if _, err := f.AddPeer(id, benchClaimBase(i, string(id)), nbrs...); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Query("N000", gen.PaperRQL, 50); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(net.Counters().Messages)/float64(b.N), "msgs/query")
	})
}

// BenchmarkClaimSubsumption compares routing with and without RDF/S
// subsumption (the §2.3 ablation).
func BenchmarkClaimSubsumption(b *testing.B) {
	reg := routing.NewRegistry()
	for id, as := range gen.PaperActiveSchemas() {
		reg.Register(id, as)
	}
	for _, mode := range []pattern.SubsumptionMode{pattern.FullSubsumption, pattern.ExactOnly} {
		b.Run(mode.String(), func(b *testing.B) {
			router := routing.NewRouter(gen.PaperSchema(), reg)
			router.Mode = mode
			q := gen.PaperQuery()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				router.Route(q)
			}
		})
	}
}

// BenchmarkClaimAdaptivity measures a full failure-recovery cycle: plan,
// peer dies, execution replans and completes.
func BenchmarkClaimAdaptivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		peers, net := benchPaperSystem(b, 3)
		p1 := peers["P1"]
		pr, err := p1.PlanQuery(gen.PaperQuery())
		if err != nil {
			b.Fatal(err)
		}
		net.Fail("P4")
		b.StartTimer()
		rows, err := p1.Engine.Execute(pr.Optimized)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() == 0 {
			b.Fatal("no rows after adaptation")
		}
	}
}

// BenchmarkClaimDistribution measures end-to-end querying under the three
// data distributions of §2.3.
func BenchmarkClaimDistribution(b *testing.B) {
	for _, dist := range []gen.Distribution{gen.Vertical, gen.Horizontal, gen.Mixed} {
		b.Run(dist.String(), func(b *testing.B) {
			syn := gen.NewSynthetic(3, false)
			net := network.New()
			var nodes []*peer.Peer
			for id, base := range syn.Bases(3, 12, dist) {
				p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: syn.Schema, Base: base}, net)
				if err != nil {
					b.Fatal(err)
				}
				nodes = append(nodes, p)
			}
			for _, x := range nodes {
				for _, y := range nodes {
					if x != y {
						x.Learn(y.Advertisement())
					}
				}
			}
			root := nodes[0]
			pr, err := root.PlanQuery(syn.Query(1, 3))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := root.Engine.Execute(pr.Optimized)
				if err != nil {
					b.Fatal(err)
				}
				if rows.Len() != 12 {
					b.Fatalf("rows = %d", rows.Len())
				}
			}
		})
	}
}

// BenchmarkExecutorShippingPolicies compares execution latency of the
// same plan under the three shipping policies.
func BenchmarkExecutorShippingPolicies(b *testing.B) {
	for _, policy := range []optimizer.ShippingPolicy{
		optimizer.DataShipping, optimizer.QueryShipping, optimizer.HybridShipping,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			peers, _ := benchPaperSystem(b, 10)
			p1 := peers["P1"]
			p1.Engine.Policy = policy
			pr, err := p1.PlanQuery(gen.PaperQuery())
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p1.Engine.Execute(pr.Raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTripleStore measures the storage substrate: inserts and
// indexed matches.
func BenchmarkTripleStore(b *testing.B) {
	b.Run("add", func(b *testing.B) {
		base := rdf.NewBase()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base.Add(rdf.Statement(
				rdf.IRI(fmt.Sprintf("http://d#s%d", i%10000)),
				gen.N1("prop1"),
				rdf.IRI(fmt.Sprintf("http://d#o%d", i%997))))
		}
	})
	b.Run("match-by-predicate", func(b *testing.B) {
		base := gen.PaperBases(1000)["P1"]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := base.Count(rdf.Term{}, rdf.NewIRI(gen.N1("prop1")), rdf.Term{}); got != 1000 {
				b.Fatalf("count = %d", got)
			}
		}
	})
	b.Run("pairs-with-subsumption", func(b *testing.B) {
		schema := gen.PaperSchema()
		base := gen.PaperBases(1000)["P4"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := len(base.Pairs(gen.N1("prop1"), schema)); got != 1000 {
				b.Fatalf("pairs = %d", got)
			}
		}
	})
}

// BenchmarkLocalEval measures single-peer conjunctive evaluation (the
// scan+join core under every distributed operator).
func BenchmarkLocalEval(b *testing.B) {
	schema := gen.PaperSchema()
	base := gen.PaperBases(1000)["P1"]
	c, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := rql.Eval(c, base)
		if err != nil {
			b.Fatal(err)
		}
		if rows.Len() != 1000 {
			b.Fatalf("rows = %d", rows.Len())
		}
	}
}

// benchRoleBase mirrors the harness roleBase helper for benchmarks.
func benchRoleBase(name string, pairs int, props ...string) *rdf.Base {
	b := rdf.NewBase()
	y := func(i int) rdf.IRI {
		return rdf.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
	}
	for _, prop := range props {
		for i := 0; i < pairs; i++ {
			switch prop {
			case "prop1":
				b.Add(rdf.Statement(rdf.IRI(fmt.Sprintf("http://d/%s#x%d", name, i)), gen.N1("prop1"), y(i)))
			case "prop2":
				b.Add(rdf.Statement(y(i), gen.N1("prop2"), rdf.IRI(fmt.Sprintf("http://d/%s#z%d", name, i))))
			case "prop3":
				b.Add(rdf.Statement(rdf.IRI(fmt.Sprintf("http://d/%s#s%d", name, i)), gen.N1("prop3"),
					rdf.IRI(fmt.Sprintf("http://d/%s#o%d", name, i))))
			}
		}
	}
	return b
}

func benchClaimBase(i int, name string) *rdf.Base {
	switch i % 10 {
	case 1:
		return benchRoleBase(name, 2, "prop1", "prop2")
	case 2:
		return benchRoleBase(name, 2, "prop1")
	case 3:
		return benchRoleBase(name, 2, "prop2")
	default:
		return benchRoleBase(name, 2, "prop3")
	}
}

// BenchmarkDHTLookup measures one property lookup on rings of growing
// size (the future-work §5 DHT index).
func BenchmarkDHTLookup(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("ring=%d", n), func(b *testing.B) {
			net := network.New()
			ring := dht.NewRing(net)
			schema := gen.PaperSchema()
			for i := 0; i < n; i++ {
				id := pattern.PeerID(fmt.Sprintf("N%04d", i))
				if err := ring.Join(id); err != nil {
					b.Fatal(err)
				}
			}
			for id, as := range gen.PaperActiveSchemas() {
				if err := ring.Join(id); err != nil {
					b.Fatal(err)
				}
				if _, err := ring.Publish(id, schema, as); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			totalHops := 0
			for i := 0; i < b.N; i++ {
				regs, hops, err := ring.Lookup("N0000", gen.N1("prop1"))
				if err != nil || len(regs) == 0 {
					b.Fatalf("lookup: %v (%d regs)", err, len(regs))
				}
				totalHops += hops
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops/lookup")
		})
	}
}

// BenchmarkMediation measures articulation-based query reformulation.
func BenchmarkMediation(b *testing.B) {
	foreign := rdf.NewSchema("http://f#")
	for _, c := range []string{"D1", "D2", "D3"} {
		foreign.MustAddClass(rdf.IRI("http://f#" + c))
	}
	foreign.MustAddProperty("http://f#rel1", "http://f#D1", "http://f#D2")
	foreign.MustAddProperty("http://f#rel2", "http://f#D2", "http://f#D3")
	art := mediate.NewArticulation("http://f#", gen.PaperNS).
		MapClass("http://f#D1", gen.N1("C1")).
		MapClass("http://f#D2", gen.N1("C2")).
		MapClass("http://f#D3", gen.N1("C3")).
		MapProperty("http://f#rel1", gen.N1("prop1")).
		MapProperty("http://f#rel2", gen.N1("prop2"))
	q := &pattern.QueryPattern{
		SchemaName: "http://f#",
		Patterns: []pattern.PathPattern{
			{ID: "Q1", SubjectVar: "X", ObjectVar: "Y", Property: "http://f#rel1", Domain: "http://f#D1", Range: "http://f#D2"},
			{ID: "Q2", SubjectVar: "Y", ObjectVar: "Z", Property: "http://f#rel2", Domain: "http://f#D2", Range: "http://f#D3"},
		},
		Projections: []string{"X", "Y"},
	}
	target := gen.PaperSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := art.Reformulate(q, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopNRouting measures routing with peer-count constraints.
func BenchmarkTopNRouting(b *testing.B) {
	syn := gen.NewSynthetic(6, false)
	reg := routing.NewRegistry()
	for id, as := range gen.ActiveSchemas(syn.Schema, syn.Bases(200, 200, gen.Horizontal)) {
		reg.Register(id, as)
	}
	q := syn.Query(1, 3)
	for _, cap := range []int{0, 1, 5} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			router := routing.NewRouter(syn.Schema, reg)
			router.MaxPeersPerPattern = cap
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				router.Route(q)
			}
		})
	}
}
