// Package sqpeer is a from-scratch reproduction of the ICS-FORTH SQPeer
// middleware for semantic query routing and processing in peer-to-peer
// database systems (Kokkinidis & Christophides, 2004).
//
// SQPeer organizes peers holding RDF/S description bases into Semantic
// Overlay Networks (SONs). Peers advertise the populated subset of a
// community schema as an active-schema (an RVL view); conjunctive RQL
// queries are abstracted into semantic query patterns; a routing
// algorithm matches patterns against advertisements using sound and
// complete query/view subsumption (including rdfs:subClassOf /
// rdfs:subPropertyOf reasoning); annotated patterns compile into
// distributed plans — unions for horizontal data distribution, joins for
// vertical — executed over ubQL-style channels with compile-time
// (join/union distribution, same-peer merging, data/query/hybrid
// shipping) and run-time (replanning around failed peers) optimization.
// Both the hybrid (super-peer) and ad-hoc (self-adaptive, interleaved
// routing/processing) architectures of the paper are implemented, plus a
// Gnutella-style flooding baseline for the evaluation harness.
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so applications can depend on a single import.
//
//	net := sqpeer.NewNetwork()
//	son := sqpeer.NewHybridSON(net, schema)
//	sp, _ := son.AddSuperPeer("SP1")
//	p1, _ := son.AddSimplePeer("P1", base1, "SP1")
//	rows, err := son.Query("P1", `SELECT X, Y FROM {X}n1:prop1{Y}, {Y}n1:prop2{Z}
//	    USING NAMESPACE n1 = &http://ics.forth.gr/SON/n1#&`)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// per-figure experiment index.
package sqpeer

import (
	"io"

	"sqpeer/internal/channel"
	"sqpeer/internal/exec"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
	"sqpeer/internal/rvl"
	"sqpeer/internal/stats"
	"sqpeer/internal/swim"
)

// RDF/S data model (package rdf).
type (
	// IRI identifies a resource, class or property.
	IRI = rdf.IRI
	// Term is an RDF term: IRI, literal or blank node.
	Term = rdf.Term
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Schema is a community RDF/S schema with subsumption reasoning.
	Schema = rdf.Schema
	// Base is an indexed in-memory RDF description base.
	Base = rdf.Base
	// Namespaces maps prefixes to namespace IRIs.
	Namespaces = rdf.Namespaces
	// BaseStats summarizes a base's extension.
	BaseStats = rdf.BaseStats
)

// Intensional formalism (package pattern).
type (
	// PeerID names a peer.
	PeerID = pattern.PeerID
	// PathPattern is one edge of a semantic query pattern.
	PathPattern = pattern.PathPattern
	// QueryPattern is a conjunctive semantic query pattern.
	QueryPattern = pattern.QueryPattern
	// ActiveSchema advertises the populated subset of a schema.
	ActiveSchema = pattern.ActiveSchema
	// Annotated is a query pattern annotated with relevant peers.
	Annotated = pattern.Annotated
)

// Query and view languages (packages rql, rvl).
type (
	// Query is a parsed RQL query.
	Query = rql.Query
	// CompiledQuery is an analyzed RQL query with its extracted pattern.
	CompiledQuery = rql.Compiled
	// ResultSet is a set of variable-binding rows.
	ResultSet = rql.ResultSet
	// Row is one result tuple.
	Row = rql.Row
	// ViewDef is a parsed RVL view statement.
	ViewDef = rvl.ViewDef
	// CompiledView is an analyzed RVL view.
	CompiledView = rvl.CompiledView
)

// Distributed planning and execution (packages plan, optimizer, exec).
type (
	// Plan is a distributed query plan.
	Plan = plan.Plan
	// PlanNode is one node of a plan tree.
	PlanNode = plan.Node
	// PlanResult bundles annotation, raw and optimized plans.
	PlanResult = plan.PlanResult
	// CostModel estimates plan costs from catalog statistics.
	CostModel = optimizer.CostModel
	// ShippingPolicy selects where joins execute.
	ShippingPolicy = optimizer.ShippingPolicy
	// OptimizerOptions toggles compile-time rewrites.
	OptimizerOptions = optimizer.Options
	// Engine executes distributed plans at a peer.
	Engine = exec.Engine
)

// Infrastructure (packages network, channel, stats, routing).
type (
	// Network is the simulated P2P transport.
	Network = network.Network
	// NetworkCounters aggregates traffic accounting.
	NetworkCounters = network.Counters
	// Channel is a deployed ubQL-style channel.
	Channel = channel.Channel
	// Link models latency and bandwidth between two peers.
	Link = stats.Link
	// PeerStats carries per-peer optimizer statistics.
	PeerStats = stats.PeerStats
	// Catalog is a node's statistics knowledge.
	Catalog = stats.Catalog
	// Registry holds known peer advertisements.
	Registry = routing.Registry
	// Router runs the query-routing algorithm.
	Router = routing.Router
)

// Peer runtime and overlays (packages peer, overlay — overlay types are
// re-exported by son.go).
type (
	// Peer is a running SQPeer node.
	Peer = peer.Peer
	// PeerConfig describes a peer at construction.
	PeerConfig = peer.Config
	// Advertisement is a peer's active-schema + statistics.
	Advertisement = peer.Advertisement
)

// Legacy-base mediation (package swim).
type (
	// VirtualBase exposes relational/XML data as a virtual RDF/S view.
	VirtualBase = swim.VirtualBase
	// RelationalDB is a minimal relational store.
	RelationalDB = swim.RelationalDB
	// RelationalTable is one relational table.
	RelationalTable = swim.Table
	// RelationalMapping maps a table onto a schema property.
	RelationalMapping = swim.RelationalMapping
	// XMLStore holds a parsed XML document.
	XMLStore = swim.XMLStore
	// XMLMapping maps XML elements onto a schema property.
	XMLMapping = swim.XMLMapping
)

// Shipping policies (paper §2.5, Figure 5).
const (
	// DataShipping joins at the root peer.
	DataShipping = optimizer.DataShipping
	// QueryShipping pushes joins to the data.
	QueryShipping = optimizer.QueryShipping
	// HybridShipping decides per join from statistics.
	HybridShipping = optimizer.HybridShipping
)

// Peer kinds (paper §3).
const (
	// ClientPeer only poses queries.
	ClientPeer = peer.ClientPeer
	// SimplePeer shares its base and processes queries.
	SimplePeer = peer.SimplePeer
	// SuperPeer routes queries for its cluster.
	SuperPeer = peer.SuperPeer
)

// NewSchema returns an empty community schema named by its namespace.
func NewSchema(namespace string) *Schema { return rdf.NewSchema(namespace) }

// NewBase returns an empty description base.
func NewBase() *Base { return rdf.NewBase() }

// NewNetwork returns an empty simulated network.
func NewNetwork() *Network { return network.New() }

// NewNamespaces returns an empty prefix table.
func NewNamespaces() *Namespaces { return rdf.NewNamespaces() }

// NewPeer builds and wires a peer into the network.
func NewPeer(cfg PeerConfig, net *Network) (*Peer, error) { return peer.New(cfg, net) }

// NewRegistry returns an empty advertisement registry.
func NewRegistry() *Registry { return routing.NewRegistry() }

// NewIndexedRegistry returns an empty advertisement registry that
// maintains the inverted property index against the community schema, so
// routing over it runs sub-linear in SON size.
func NewIndexedRegistry(schema *Schema) *Registry { return routing.NewIndexedRegistry(schema) }

// NewRouter returns a full-subsumption router over the registry.
func NewRouter(schema *Schema, reg *Registry) *Router { return routing.NewRouter(schema, reg) }

// NewCatalog returns an empty statistics catalog.
func NewCatalog() *Catalog { return stats.NewCatalog() }

// NewCostModel returns a cost model with default knobs over the catalog.
func NewCostModel(cat *Catalog) *CostModel { return optimizer.NewCostModel(cat) }

// ParseRQL parses and analyzes an RQL query against a community schema,
// returning the compiled query with its extracted semantic query pattern.
func ParseRQL(src string, schema *Schema) (*CompiledQuery, error) {
	return rql.ParseAndAnalyze(src, schema)
}

// ParseRVL parses and analyzes RVL view statements against a schema.
func ParseRVL(src string, schema *Schema) ([]*CompiledView, error) {
	return rvl.ParseAndAnalyze(src, schema)
}

// EvalLocal evaluates a compiled query against a single local base (no
// distribution) — useful as ground truth and for client-side tools.
func EvalLocal(q *CompiledQuery, base *Base) (*ResultSet, error) { return rql.Eval(q, base) }

// DeriveActiveSchema inspects a materialized base and derives its
// advertisement.
func DeriveActiveSchema(base *Base, schema *Schema) *ActiveSchema {
	return pattern.DeriveActiveSchema(base, schema)
}

// GeneratePlan compiles an annotated query pattern into a distributed
// plan (the paper's Query-Processing Algorithm).
func GeneratePlan(ann *Annotated) (*Plan, error) { return plan.Generate(ann) }

// OptimizePlan applies the compile-time rewrite pipeline (join/union
// distribution + same-peer merge rules).
func OptimizePlan(p *Plan, opts OptimizerOptions) *Plan { return optimizer.Optimize(p, opts) }

// PaperSchema returns the community schema of the paper's Figure 1
// (classes C1–C6, properties prop1–prop4 with prop4 ⊑ prop1).
func PaperSchema() *Schema { return gen.PaperSchema() }

// PaperQuery returns the Figure-1 query pattern (Q1 ⋈ Q2 on Y).
func PaperQuery() *QueryPattern { return gen.PaperQuery() }

// PaperRQL is the Figure-1 query in RQL concrete syntax.
const PaperRQL = gen.PaperRQL

// PaperRVL is the Figure-1 advertisement view in RVL concrete syntax.
const PaperRVL = gen.PaperRVL

// IndentPlan renders a plan tree one node per line for display.
func IndentPlan(p *Plan) string { return plan.Indent(p.Root) }

// NewIRITerm returns an IRI term.
func NewIRITerm(iri IRI) Term { return rdf.NewIRI(iri) }

// NewLiteralTerm returns a plain literal term.
func NewLiteralTerm(lex string) Term { return rdf.NewLiteral(lex) }

// Statement builds a triple relating two resources through a property.
func Statement(subject, property, object IRI) Triple { return rdf.Statement(subject, property, object) }

// Typing builds the rdf:type triple classifying a resource under a class.
func Typing(resource, class IRI) Triple { return rdf.Typing(resource, class) }

// NewRelationalDB returns an empty simulated relational database.
func NewRelationalDB() *RelationalDB { return swim.NewRelationalDB() }

// NewRelationalTable declares a relational table with the given columns.
func NewRelationalTable(name string, columns ...string) *RelationalTable {
	return swim.NewTable(name, columns...)
}

// ParseXML parses an XML document into a store for SWIM mappings.
func ParseXML(doc string) (*XMLStore, error) { return swim.ParseXML(doc) }

// NewAnnotatedPattern builds an empty annotation for a query pattern.
func NewAnnotatedPattern(q *QueryPattern) *Annotated { return pattern.NewAnnotated(q) }

// ParseSchemaText reads a community schema in the line-oriented text
// format (see internal/rdf: "schema <ns>", "class C [< Super]",
// "property p Dom -> Rng [< super]").
func ParseSchemaText(r io.Reader) (*Schema, error) { return rdf.ParseSchemaText(r) }

// WriteSchemaText renders a schema in the text format.
func WriteSchemaText(w io.Writer, s *Schema) error { return rdf.WriteSchemaText(w, s) }

// ReadBase parses a description base in the N-Triples-like line format.
func ReadBase(r io.Reader) (*Base, error) { return rdf.ReadBase(r) }

// WriteBase dumps a description base in the N-Triples-like line format.
func WriteBase(w io.Writer, b *Base) error { return rdf.WriteBase(w, b) }
