// Command adhoc replays the paper's Figure-7 scenario on a self-adaptive
// SON: P1 knows only its neighbors P2 and P3 (both covering Q1) and
// nobody for Q2, so it generates a partial plan with a hole; the plan is
// forwarded to P2, which knows P5, completes it, executes it and streams
// the answer back through the deployed channels. The example then shows
// k-depth neighborhood expansion and adaptation to a peer failure.
package main

import (
	"fmt"
	"log"

	"sqpeer"
)

const n1NS = "http://ics.forth.gr/SON/n1#"

func n1(local string) sqpeer.IRI { return sqpeer.IRI(n1NS + local) }

func y(i int) sqpeer.IRI {
	return sqpeer.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
}

func prop1Base(peerName string, n int) *sqpeer.Base {
	b := sqpeer.NewBase()
	for i := 0; i < n; i++ {
		x := sqpeer.IRI(fmt.Sprintf("http://d/%s#x%d", peerName, i))
		b.Add(sqpeer.Statement(x, n1("prop1"), y(i)))
		b.Add(sqpeer.Typing(x, n1("C1")))
	}
	return b
}

func prop2Base(peerName string, n int) *sqpeer.Base {
	b := sqpeer.NewBase()
	for i := 0; i < n; i++ {
		z := sqpeer.IRI(fmt.Sprintf("http://d/%s#z%d", peerName, i))
		b.Add(sqpeer.Statement(y(i), n1("prop2"), z))
		b.Add(sqpeer.Typing(z, n1("C3")))
	}
	return b
}

func main() {
	schema := sqpeer.PaperSchema()
	net := sqpeer.NewNetwork()
	son := sqpeer.NewAdhocSON(net, schema)

	// Topology of Figure 7: P1 – {P2, P3}, P2 – P5.
	mustAdd(son, "P1", sqpeer.NewBase())
	mustAdd(son, "P2", prop1Base("P2", 3), "P1")
	mustAdd(son, "P3", prop1Base("P3", 3), "P1")
	mustAdd(son, "P5", prop2Base("P5", 3), "P2")

	p1, _ := son.Peer("P1")
	ann := p1.Router.Route(sqpeer.PaperQuery())
	fmt.Println("P1's local routing knowledge (depth-1 neighborhood):")
	fmt.Println(" ", ann)
	partial, err := sqpeer.GeneratePlan(ann)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partial plan with hole (Figure 7a):")
	fmt.Println(" ", partial)

	fmt.Println("\nforwarding through the SON (interleaved routing/processing)…")
	rows, err := son.Query("P1", sqpeer.PaperRQL)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("complete answer received at P1 (completed and executed by P2):")
	fmt.Print(rows)

	// Alternative: P1 expands its neighborhood to depth 2, learns P5's
	// advertisement, and can then route the query entirely by itself.
	learned, err := son.ExpandNeighborhood("P1", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 2-depth expansion P1 learned %d advertisement(s):\n", learned)
	ann2 := p1.Router.Route(sqpeer.PaperQuery())
	fmt.Println(" ", ann2)

	// Figure 7's failed channel: P3 dies; the query still completes with
	// P2's data only.
	net.Fail("P3")
	fmt.Println("\nP3 failed; re-asking the query:")
	rows2, err := son.Query("P1", sqpeer.PaperRQL)
	if err != nil {
		log.Fatalf("query after failure: %v", err)
	}
	fmt.Print(rows2)
}

func mustAdd(son *sqpeer.AdhocSON, id sqpeer.PeerID, base *sqpeer.Base, neighbors ...sqpeer.PeerID) {
	if _, err := son.AddPeer(id, base, neighbors...); err != nil {
		log.Fatalf("add %s: %v", id, err)
	}
}
