// Command quickstart walks through the paper's running example end to
// end: the Figure-1 community schema, RVL advertisement and RQL query;
// the Figure-2 routing annotation (including the prop4 ⊑ prop1
// subsumption match); the Figure-3 plan and channel deployment; and the
// Figure-4 optimization rewrites — finishing with a real distributed
// execution over four in-process peers.
package main

import (
	"fmt"
	"log"

	"sqpeer"
)

func main() {
	schema := sqpeer.PaperSchema()
	fmt.Println("== Figure 1: community RDF/S schema (namespace n1) ==")
	fmt.Print(schema)

	// The RVL advertisement of Figure 1: a peer populating C5, C6 and
	// prop4 from its base.
	views, err := sqpeer.ParseRVL(sqpeer.PaperRVL, schema)
	if err != nil {
		log.Fatalf("parse RVL: %v", err)
	}
	fmt.Println("\n== Figure 1: RVL advertisement and derived active-schema ==")
	fmt.Println(views[0].View)
	fmt.Println(views[0].ActiveSchema())

	// The RQL query of Figure 1 and its semantic query pattern.
	compiled, err := sqpeer.ParseRQL(sqpeer.PaperRQL, schema)
	if err != nil {
		log.Fatalf("parse RQL: %v", err)
	}
	fmt.Println("\n== Figure 1: RQL query and extracted query pattern ==")
	fmt.Println(sqpeer.PaperRQL)
	fmt.Println("pattern:", compiled.Pattern)

	// Four peers with the Figure-2 bases on one simulated network.
	net := sqpeer.NewNetwork()
	peers := map[sqpeer.PeerID]*sqpeer.Peer{}
	for id, base := range paperBases(3) {
		p, err := sqpeer.NewPeer(sqpeer.PeerConfig{
			ID: id, Kind: sqpeer.SimplePeer, Schema: schema, Base: base,
		}, net)
		if err != nil {
			log.Fatalf("peer %s: %v", id, err)
		}
		peers[id] = p
	}
	// Everyone learns everyone's advertisement (a tiny fully-known SON).
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}

	// Figure 2: the routing annotation. P4 is annotated on Q1 because
	// prop4 ⊑ prop1.
	p1 := peers["P1"]
	ann := p1.Router.Route(compiled.Pattern)
	fmt.Println("\n== Figure 2: annotated query pattern ==")
	fmt.Println(ann)

	// Figure 3: Plan 1 from the query-processing algorithm.
	pr, err := p1.PlanQuery(compiled.Pattern)
	if err != nil {
		log.Fatalf("plan: %v", err)
	}
	fmt.Println("\n== Figure 3: generated plan (Plan 1) ==")
	fmt.Println(pr.Raw)

	// Figure 4: Plan 3 after distribution + transformation rules.
	fmt.Println("\n== Figure 4: optimized plan (Plan 3) ==")
	fmt.Println(pr.Optimized)
	fmt.Print(sqpeer.IndentPlan(pr.Optimized))

	// Execute: channels are deployed to P2, P3, P4 and the answer is
	// assembled at P1.
	rows, err := p1.Engine.Execute(pr.Optimized)
	if err != nil {
		log.Fatalf("execute: %v", err)
	}
	fmt.Println("== Distributed answer at P1 ==")
	fmt.Print(rows)
	m := p1.Engine.Metrics()
	fmt.Printf("\nchannels deployed: %d, subplans shipped: %d, rows shipped: %d\n",
		m.ChannelsOpened, m.SubplansShipped, m.RowsShipped)
	c := net.Counters()
	fmt.Printf("network: %d messages, %d bytes\n", c.Messages, c.Bytes)
}

// paperBases rebuilds the Figure-2 peer bases: P1 holds prop1+prop2, P2
// holds prop1, P3 holds prop2, P4 holds prop4+prop2, all sharing join
// resources y_i.
func paperBases(pairs int) map[sqpeer.PeerID]*sqpeer.Base {
	n1 := func(local string) sqpeer.IRI {
		return sqpeer.IRI("http://ics.forth.gr/SON/n1#" + local)
	}
	y := func(i int) sqpeer.IRI {
		return sqpeer.IRI(fmt.Sprintf("http://ics.forth.gr/data/shared#y%d", i))
	}
	res := func(peer, local string, i int) sqpeer.IRI {
		return sqpeer.IRI(fmt.Sprintf("http://ics.forth.gr/data/%s#%s%d", peer, local, i))
	}
	out := map[sqpeer.PeerID]*sqpeer.Base{}
	build := func(peerName string, props ...string) *sqpeer.Base {
		b := sqpeer.NewBase()
		for _, prop := range props {
			for i := 0; i < pairs; i++ {
				switch prop {
				case "prop1":
					b.Add(sqpeer.Statement(res(peerName, "x", i), n1("prop1"), y(i)))
					b.Add(sqpeer.Typing(res(peerName, "x", i), n1("C1")))
				case "prop4":
					b.Add(sqpeer.Statement(res(peerName, "x5_", i), n1("prop4"), y(i)))
					b.Add(sqpeer.Typing(res(peerName, "x5_", i), n1("C5")))
				case "prop2":
					b.Add(sqpeer.Statement(y(i), n1("prop2"), res(peerName, "z", i)))
					b.Add(sqpeer.Typing(res(peerName, "z", i), n1("C3")))
				}
			}
		}
		return b
	}
	out["P1"] = build("P1", "prop1", "prop2")
	out["P2"] = build("P2", "prop1")
	out["P3"] = build("P3", "prop2")
	out["P4"] = build("P4", "prop4", "prop2")
	return out
}
