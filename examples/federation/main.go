// Command federation shows SQPeer's mediation role (paper §2.4/§3.1): a
// client community describes publications with its own RDF/S schema,
// while the data lives in peers committed to a different community
// schema. A super-peer-style mediator holds articulations (class and
// property correspondences), reformulates the client's query pattern into
// the data community's vocabulary, routes it there, and the client
// executes the mediated plan — plus the same routing resolved through the
// schema DHT of the paper's future work.
package main

import (
	"fmt"
	"log"

	"sqpeer"
	"sqpeer/internal/dht"
	"sqpeer/internal/gen"
	"sqpeer/internal/mediate"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
)

const libNS = "http://library-community.example/lib#"

func lib(local string) sqpeer.IRI { return sqpeer.IRI(libNS + local) }

func main() {
	// The data community: the paper's n1 schema with the Figure-2 peers.
	dataSchema := gen.PaperSchema()
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for id, base := range gen.PaperBases(3) {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: dataSchema, Base: base}, net)
		if err != nil {
			log.Fatal(err)
		}
		peers[id] = p
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}

	// The client community: a library vocabulary for the same domain.
	libSchema := sqpeer.NewSchema(libNS)
	for _, c := range []string{"Work", "Expression", "Item"} {
		libSchema.MustAddClass(lib(c))
	}
	libSchema.MustAddProperty(lib("realizedBy"), lib("Work"), lib("Expression"))
	libSchema.MustAddProperty(lib("embodiedIn"), lib("Expression"), lib("Item"))

	// Articulations the mediator knows.
	art := mediate.NewArticulation(libNS, gen.PaperNS).
		MapClass(lib("Work"), gen.N1("C1")).
		MapClass(lib("Expression"), gen.N1("C2")).
		MapClass(lib("Item"), gen.N1("C3")).
		MapProperty(lib("realizedBy"), gen.N1("prop1")).
		MapProperty(lib("embodiedIn"), gen.N1("prop2"))
	if err := art.Validate(libSchema, dataSchema); err != nil {
		log.Fatalf("articulation: %v", err)
	}

	// The client's query, in its own vocabulary.
	clientQuery := &sqpeer.QueryPattern{
		SchemaName: libNS,
		Patterns: []sqpeer.PathPattern{
			{ID: "Q1", SubjectVar: "W", ObjectVar: "E", Property: lib("realizedBy"), Domain: lib("Work"), Range: lib("Expression")},
			{ID: "Q2", SubjectVar: "E", ObjectVar: "I", Property: lib("embodiedIn"), Domain: lib("Expression"), Range: lib("Item")},
		},
		Projections: []string{"W", "E"},
	}
	fmt.Println("client query (library vocabulary):")
	fmt.Println(" ", clientQuery)

	reformulated, err := art.Reformulate(clientQuery, dataSchema)
	if err != nil {
		log.Fatalf("reformulate: %v", err)
	}
	fmt.Println("\nmediated into the data community's vocabulary:")
	fmt.Println(" ", reformulated)

	// Route in the data community and execute at P1.
	p1 := peers["P1"]
	ann := p1.Router.Route(reformulated)
	fmt.Println("\nrouting annotation:", ann)
	pl, err := plan.Generate(ann)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := p1.Engine.Execute(pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmediated answer:")
	fmt.Print(rows)

	// The same routing resolved through the schema DHT (future work §5):
	// every peer publishes its active-schema into the ring; one lookup
	// per pattern replaces the advertisement registry.
	ring := dht.NewRing(net)
	for id, p := range peers {
		if err := ring.Join(id + "-dht"); err != nil {
			log.Fatal(err)
		}
		if _, err := ring.Publish(id+"-dht", dataSchema, p.Active); err != nil {
			log.Fatal(err)
		}
		// Publish under the peer's real id too (the -dht suffix keeps the
		// ring nodes distinct from the query-processing nodes here).
		_ = id
	}
	dhtRouter := dht.NewRouter(ring, dataSchema, "P1-dht")
	dhtAnn, st, err := dhtRouter.Route(reformulated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDHT-routed annotation (%d lookups, %d hops):\n  %s\n",
		st.Lookups, st.Hops, dhtAnn)
}
