// Command elearning deploys a hybrid (super-peer) SON for the e-learning
// community the paper's introduction motivates: universities share RDF/S
// descriptions of courses, lectures and authors under one community
// schema; one peer is a legacy relational database exposed through
// SWIM-style virtual views; a client asks RQL queries that are routed by
// the super-peer and processed by the asking peer (paper §3.1, Figure 6).
package main

import (
	"fmt"
	"log"

	"sqpeer"
)

const eduNS = "http://elearning.example/schema#"

func edu(local string) sqpeer.IRI { return sqpeer.IRI(eduNS + local) }

// eduSchema declares the community schema: Course -teaches-> Lecture
// -authoredBy-> Author, with AdvancedCourse ⊑ Course and a subproperty
// teachesAdvanced ⊑ teaches.
func eduSchema() *sqpeer.Schema {
	s := sqpeer.NewSchema(eduNS)
	for _, c := range []string{"Course", "Lecture", "Author", "AdvancedCourse"} {
		s.MustAddClass(edu(c))
	}
	s.MustAddProperty(edu("teaches"), edu("Course"), edu("Lecture"))
	s.MustAddProperty(edu("authoredBy"), edu("Lecture"), edu("Author"))
	s.MustSetSubClassOf(edu("AdvancedCourse"), edu("Course"))
	s.MustAddProperty(edu("teachesAdvanced"), edu("AdvancedCourse"), edu("Lecture"))
	s.MustSetSubPropertyOf(edu("teachesAdvanced"), edu("teaches"))
	if err := s.Validate(); err != nil {
		log.Fatalf("schema: %v", err)
	}
	return s
}

func res(site, local string) sqpeer.IRI {
	return sqpeer.IRI(fmt.Sprintf("http://%s.example/data#%s", site, local))
}

func main() {
	schema := eduSchema()
	net := sqpeer.NewNetwork()
	son := sqpeer.NewHybridSON(net, schema)
	if _, err := son.AddSuperPeer("SP-edu"); err != nil {
		log.Fatal(err)
	}

	// University A: materialized RDF base with courses and lectures.
	uniA := sqpeer.NewBase()
	for i := 0; i < 3; i++ {
		course := res("uniA", fmt.Sprintf("course%d", i))
		lecture := res("shared", fmt.Sprintf("lecture%d", i))
		uniA.Add(sqpeer.Statement(course, edu("teaches"), lecture))
		uniA.Add(sqpeer.Typing(course, edu("Course")))
		uniA.Add(sqpeer.Typing(lecture, edu("Lecture")))
	}
	// University B: advanced courses only (subproperty teachesAdvanced).
	uniB := sqpeer.NewBase()
	for i := 0; i < 2; i++ {
		course := res("uniB", fmt.Sprintf("advanced%d", i))
		lecture := res("shared", fmt.Sprintf("lecture%d", i))
		uniB.Add(sqpeer.Statement(course, edu("teachesAdvanced"), lecture))
		uniB.Add(sqpeer.Typing(course, edu("AdvancedCourse")))
		uniB.Add(sqpeer.Typing(lecture, edu("Lecture")))
	}

	// Publisher C: a legacy relational catalog of lecture authorship,
	// exposed as a virtual RDF/S view through SWIM mapping rules (the
	// virtual scenario of §2.2).
	db := sqpeer.NewRelationalDB() // facade constructor below
	authors := newTable("authorship", "lecture", "author")
	for i := 0; i < 3; i++ {
		authors.MustInsert(fmt.Sprintf("lecture%d", i), fmt.Sprintf("author%d", i%2))
	}
	if err := db.AddTable(authors); err != nil {
		log.Fatal(err)
	}
	virtual := &sqpeer.VirtualBase{
		Schema: schema,
		DB:     db,
		RelMappings: []sqpeer.RelationalMapping{{
			Table: "authorship", SubjectColumn: "lecture", ObjectColumn: "author",
			SubjectPrefix: "http://shared.example/data#",
			ObjectPrefix:  "http://publisherC.example/data#",
			Property:      edu("authoredBy"),
			SubjectClass:  edu("Lecture"), ObjectClass: edu("Author"),
		}},
	}
	pubBase, err := virtual.Materialize()
	if err != nil {
		log.Fatalf("materialize virtual base: %v", err)
	}
	virtualAS, err := virtual.ActiveSchema()
	if err != nil {
		log.Fatalf("virtual active-schema: %v", err)
	}
	fmt.Println("publisher C advertises (from mapping rules, no data touched):")
	fmt.Println(" ", virtualAS)

	for id, base := range map[sqpeer.PeerID]*sqpeer.Base{
		"uniA": uniA, "uniB": uniB, "publisherC": pubBase,
	} {
		if _, err := son.AddSimplePeer(id, base, "SP-edu"); err != nil {
			log.Fatalf("add %s: %v", id, err)
		}
	}

	// The client's question: which courses teach lectures by which
	// authors? teaches ⊑-closure pulls uniB's advanced courses in.
	query := `SELECT C, A
FROM {C}e:teaches{L}, {L}e:authoredBy{A}
USING NAMESPACE e = &` + eduNS + `&`
	fmt.Println("\nclient query at uniA:")
	fmt.Println(query)

	uniAPeer, _ := son.Peer("uniA")
	compiled, err := sqpeer.ParseRQL(query, schema)
	if err != nil {
		log.Fatal(err)
	}
	ann, err := uniAPeer.RequestRouting("SP-edu", compiled.Pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsuper-peer annotation (routing phase):")
	fmt.Println(" ", ann)

	rows, err := son.Query("uniA", query)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("\nanswer (processing phase at uniA):")
	fmt.Print(rows)

	// A narrower query over advanced courses only: routing must select
	// uniB alone for the first pattern.
	advanced := `SELECT C FROM {C;e:AdvancedCourse}e:teaches{L}, {L}e:authoredBy{A}
USING NAMESPACE e = &` + eduNS + `&`
	annAdv, err := uniAPeer.RequestRouting("SP-edu", mustCompile(advanced, schema).Pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadvanced-course query routes to:")
	fmt.Println(" ", annAdv)
	advRows, err := son.Query("uniA", advanced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(advRows)
}

func mustCompile(q string, s *sqpeer.Schema) *sqpeer.CompiledQuery {
	c, err := sqpeer.ParseRQL(q, s)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func newTable(name string, cols ...string) *sqpeer.RelationalTable {
	return sqpeer.NewRelationalTable(name, cols...)
}
