// Command shipping replays the paper's Figure-5 discussion: peer P1 must
// combine subquery results from P2 and P3, and the optimizer's cost model
// decides between data shipping (join at P1) and query shipping (join
// pushed to P2) under three regimes — a slow P1–P3 link, a heavily loaded
// P2, and a large intermediate result at P2.
package main

import (
	"fmt"

	"sqpeer"
)

const n1NS = "http://ics.forth.gr/SON/n1#"

func n1(local string) sqpeer.IRI { return sqpeer.IRI(n1NS + local) }

// scenario builds a catalog for one Figure-5 regime and reports the cost
// model's verdict.
func scenario(name string, setup func(cat *sqpeer.Catalog)) {
	cat := sqpeer.NewCatalog()
	// Baseline statistics: P2 and P3 both hold 1000 pairs.
	for _, id := range []sqpeer.PeerID{"P1", "P2", "P3"} {
		card := 1000
		if id == "P1" {
			card = 0
		}
		cat.PutPeer(&sqpeer.PeerStats{
			Peer:  id,
			Slots: 4,
			PropertyCard: map[sqpeer.IRI]int{
				n1("prop1"): card, n1("prop2"): card,
			},
			DistinctSubjects: map[sqpeer.IRI]int{
				n1("prop1"): card, n1("prop2"): card,
			},
			DistinctObjects: map[sqpeer.IRI]int{
				n1("prop1"): card, n1("prop2"): card,
			},
		})
	}
	setup(cat)

	cm := sqpeer.NewCostModel(cat)
	q := sqpeer.PaperQuery()
	// The Figure-5 plan shape: ⋈(Q1@P2, Q2@P3) rooted at P1.
	ann := newAnnotated(q)
	p, err := sqpeer.GeneratePlan(ann)
	if err != nil {
		panic(err)
	}
	data := cm.EstimateCost(p.Root, "P1", sqpeer.DataShipping)
	query := cm.EstimateCost(p.Root, "P1", sqpeer.QueryShipping)
	policy, best := cm.ChoosePolicy(p.Root, "P1")

	fmt.Printf("== %s ==\n", name)
	fmt.Printf("  plan: %s (root P1)\n", p)
	fmt.Printf("  data-shipping cost:  %8.1f ms (join at P1)\n", data.TotalMS)
	fmt.Printf("  query-shipping cost: %8.1f ms (join at %s)\n", query.TotalMS, query.Decisions[0].Site)
	fmt.Printf("  chosen policy:       %s (%.1f ms)\n\n", policy, best.TotalMS)
}

func newAnnotated(q *sqpeer.QueryPattern) *sqpeer.Annotated {
	ann := sqpeer.NewAnnotatedPattern(q)
	ann.Annotate("Q1", "P2", nil)
	ann.Annotate("Q2", "P3", nil)
	return ann
}

func main() {
	scenario("regime (a): slow P1–P3 link, fast P2–P3 link", func(cat *sqpeer.Catalog) {
		cat.PutLink("P1", "P3", sqpeer.Link{LatencyMS: 500, BandwidthKBps: 10})
		cat.PutLink("P2", "P3", sqpeer.Link{LatencyMS: 5, BandwidthKBps: 10000})
		cat.PutLink("P1", "P2", sqpeer.Link{LatencyMS: 20, BandwidthKBps: 1000})
	})
	scenario("regime (b): P2 under heavy processing load", func(cat *sqpeer.Catalog) {
		cat.SetLoad("P2", 4000)
	})
	scenario("regime (c): large intermediate result at P2", func(cat *sqpeer.Catalog) {
		cat.PutPeer(&sqpeer.PeerStats{
			Peer: "P2", Slots: 4,
			PropertyCard:     map[sqpeer.IRI]int{n1("prop1"): 50000},
			DistinctSubjects: map[sqpeer.IRI]int{n1("prop1"): 50000},
			DistinctObjects:  map[sqpeer.IRI]int{n1("prop1"): 50000},
		})
		cat.PutPeer(&sqpeer.PeerStats{
			Peer: "P3", Slots: 4,
			PropertyCard:     map[sqpeer.IRI]int{n1("prop2"): 100},
			DistinctSubjects: map[sqpeer.IRI]int{n1("prop2"): 100},
			DistinctObjects:  map[sqpeer.IRI]int{n1("prop2"): 100},
		})
	})
}
