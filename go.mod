module sqpeer

go 1.22
