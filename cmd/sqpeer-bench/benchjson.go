// Machine-readable micro-benchmarks for the performance-tracking
// artifact (-bench-json): the two headline numbers of the parallel
// horizontal-distribution work, measured with testing.Benchmark so the
// file reports real ns/op rather than one-shot timings.
//
//   - Fig2Routing at a 500-peer SON, brute-force triple loop vs the
//     inverted property index (before/after of the routing change);
//   - Fig3Execution of the paper's Figure-3 plan at Parallelism 1 vs 4
//     over links sleeping compressed transfer times (before/after of the
//     concurrent executor).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"sqpeer/internal/gen"
	"sqpeer/internal/harness"
	"sqpeer/internal/network"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/routing"
)

// benchReport is the schema of the emitted JSON file.
type benchReport struct {
	Fig2Routing struct {
		Peers              int     `json:"peers"`
		BruteNsPerOp       float64 `json:"brute_ns_per_op"`
		IndexedNsPerOp     float64 `json:"indexed_ns_per_op"`
		IndexedAllocsPerOp int64   `json:"indexed_allocs_per_op"`
		IndexedBytesPerOp  int64   `json:"indexed_bytes_per_op"`
		Speedup            float64 `json:"speedup"`
	} `json:"fig2_routing"`
	Fig3Execution struct {
		Pairs               int     `json:"pairs"`
		LatencyScale        float64 `json:"latency_scale"`
		SequentialNsPerOp   float64 `json:"sequential_ns_per_op"`
		ParallelNsPerOp     float64 `json:"parallel_ns_per_op"`
		ParallelAllocsPerOp int64   `json:"parallel_allocs_per_op"`
		ParallelBytesPerOp  int64   `json:"parallel_bytes_per_op"`
		Parallelism         int     `json:"parallelism"`
		Speedup             float64 `json:"speedup"`
	} `json:"fig3_execution"`
}

// routingWorkload mirrors the bench_test.go FIG-2 sweep setup at SON
// size n over the synthetic chain schema.
func routingWorkload(n int, indexed bool) (*routing.Router, *pattern.QueryPattern) {
	syn := gen.NewSynthetic(8, true)
	var reg *routing.Registry
	if indexed {
		reg = routing.NewIndexedRegistry(syn.Schema)
	} else {
		reg = routing.NewRegistry()
	}
	for id, as := range gen.ActiveSchemas(syn.Schema, syn.Bases(n, n, gen.Vertical)) {
		reg.Register(id, as)
	}
	return routing.NewRouter(syn.Schema, reg), syn.Query(1, 3)
}

// executionWorkload mirrors the bench_test.go Figure-3 setup: the four
// paper peers with full mutual knowledge and compressed real latency.
func executionWorkload(pairs int, latencyScale float64, parallelism int) (*peer.Peer, *plan.PlanResult, error) {
	schema := gen.PaperSchema()
	bases := gen.PaperBases(pairs)
	net := network.New()
	peers := map[pattern.PeerID]*peer.Peer{}
	for _, id := range []pattern.PeerID{"P1", "P2", "P3", "P4"} {
		p, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: bases[id]}, net)
		if err != nil {
			return nil, nil, err
		}
		peers[id] = p
	}
	for _, x := range peers {
		for _, y := range peers {
			if x != y {
				x.Learn(y.Advertisement())
			}
		}
	}
	net.SetRealLatency(latencyScale)
	p1 := peers["P1"]
	p1.Engine.Parallelism = parallelism
	pr, err := p1.PlanQuery(gen.PaperQuery())
	if err != nil {
		return nil, nil, err
	}
	return p1, pr, nil
}

// runBenchJSON measures the before/after pairs and writes the report.
func runBenchJSON(path string) error {
	const (
		sonSize      = 500
		pairs        = 20
		latencyScale = 0.2
		parallelism  = 4
	)
	var rep benchReport

	fmt.Fprintf(os.Stderr, "bench-json: Fig2Routing peers=%d (brute vs indexed)\n", sonSize)
	rep.Fig2Routing.Peers = sonSize
	for _, indexed := range []bool{false, true} {
		router, q := routingWorkload(sonSize, indexed)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				router.Route(q)
			}
		})
		ns := float64(res.NsPerOp())
		if indexed {
			rep.Fig2Routing.IndexedNsPerOp = ns
			rep.Fig2Routing.IndexedAllocsPerOp = res.AllocsPerOp()
			rep.Fig2Routing.IndexedBytesPerOp = res.AllocedBytesPerOp()
			harness.ObserveBenchAlloc("fig2.indexed",
				float64(res.AllocsPerOp()), float64(res.AllocedBytesPerOp()))
		} else {
			rep.Fig2Routing.BruteNsPerOp = ns
		}
	}
	rep.Fig2Routing.Speedup = rep.Fig2Routing.BruteNsPerOp / rep.Fig2Routing.IndexedNsPerOp

	fmt.Fprintf(os.Stderr, "bench-json: Fig3Execution parallelism 1 vs %d\n", parallelism)
	rep.Fig3Execution.Pairs = pairs
	rep.Fig3Execution.LatencyScale = latencyScale
	rep.Fig3Execution.Parallelism = parallelism
	for _, par := range []int{1, parallelism} {
		p1, pr, err := executionWorkload(pairs, latencyScale, par)
		if err != nil {
			return fmt.Errorf("bench-json: build system: %w", err)
		}
		var execErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p1.Engine.Execute(pr.Raw); err != nil {
					execErr = err
					b.FailNow()
				}
			}
		})
		if execErr != nil {
			return fmt.Errorf("bench-json: execute: %w", execErr)
		}
		ns := float64(res.NsPerOp())
		if par == 1 {
			rep.Fig3Execution.SequentialNsPerOp = ns
		} else {
			rep.Fig3Execution.ParallelNsPerOp = ns
			rep.Fig3Execution.ParallelAllocsPerOp = res.AllocsPerOp()
			rep.Fig3Execution.ParallelBytesPerOp = res.AllocedBytesPerOp()
			harness.ObserveBenchAlloc("fig3.parallel",
				float64(res.AllocsPerOp()), float64(res.AllocedBytesPerOp()))
		}
	}
	rep.Fig3Execution.Speedup = rep.Fig3Execution.SequentialNsPerOp / rep.Fig3Execution.ParallelNsPerOp

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-json: routing ×%.2f, execution ×%.2f → %s\n",
		rep.Fig2Routing.Speedup, rep.Fig3Execution.Speedup, path)
	return nil
}
