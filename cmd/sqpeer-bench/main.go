// Command sqpeer-bench regenerates the paper's evaluation artifacts: one
// experiment per figure (fig1..fig7) plus the quantified-claim
// experiments (son, sub, adapt, dist, adv). Each experiment prints
// paper-style result rows and self-checks whether the reproduced behavior
// matches the paper's statement.
//
// Usage:
//
//	sqpeer-bench                            # run everything
//	sqpeer-bench -exp fig4                  # run one experiment
//	sqpeer-bench -list                      # list experiment ids
//	sqpeer-bench -bench-json BENCH_PR1.json # machine-readable perf numbers
package main

import (
	"flag"
	"fmt"
	"os"

	"sqpeer/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchJSON := flag.String("bench-json", "", "write routing/execution before-after ns/op to this JSON file and exit")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}
	var reports []*harness.Report
	if *exp == "all" {
		reports = harness.All()
	} else {
		r, err := harness.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		reports = []*harness.Report{r}
	}
	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		if r.ArtifactName != "" {
			if err := os.WriteFile(r.ArtifactName, r.ArtifactJSON, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("wrote %s\n", r.ArtifactName)
		}
		if !r.Pass {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments reproduced\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}
