// Command sqpeer-bench regenerates the paper's evaluation artifacts: one
// experiment per figure (fig1..fig7) plus the quantified-claim
// experiments (son, sub, adapt, dist, adv). Each experiment prints
// paper-style result rows and self-checks whether the reproduced behavior
// matches the paper's statement.
//
// Usage:
//
//	sqpeer-bench                            # run everything
//	sqpeer-bench -exp fig4                  # run one experiment
//	sqpeer-bench -list                      # list experiment ids
//	sqpeer-bench -bench-json BENCH_PR1.json # machine-readable perf numbers
//	sqpeer-bench -trace trace.json          # chrome://tracing file + .jsonl sibling
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sqpeer/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list experiment ids and exit")
	benchJSON := flag.String("bench-json", "", "write routing/execution before-after ns/op to this JSON file and exit")
	tracePath := flag.String("trace", "", "run a traced Figure-3 query, write the chrome://tracing trace_event file here (plus a .jsonl sibling) and exit")
	allocBaseline := flag.String("alloc-baseline", "", "committed BENCH_PR6.json to gate against: fail if the batch plane's allocs/row regresses >20% at any matching sweep point")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}
	var reports []*harness.Report
	if *exp == "all" {
		reports = harness.All()
	} else {
		r, err := harness.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		reports = []*harness.Report{r}
	}
	failed := 0
	for _, r := range reports {
		fmt.Println(r)
		// Gate before writing: the baseline may be the very file the fresh
		// artifact is about to replace.
		if *allocBaseline != "" && r.ArtifactName == "BENCH_PR6.json" {
			if err := gateAllocs(*allocBaseline, r.ArtifactJSON); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed++
			}
		}
		if r.ArtifactName != "" {
			if err := os.WriteFile(r.ArtifactName, r.ArtifactJSON, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("wrote %s\n", r.ArtifactName)
		}
		for _, extra := range r.Extras {
			if err := os.WriteFile(extra.Name, extra.Blob, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("wrote %s\n", extra.Name)
		}
		if !r.Pass {
			failed++
		}
	}
	fmt.Printf("%d/%d experiments reproduced\n", len(reports)-failed, len(reports))
	if failed > 0 {
		os.Exit(1)
	}
}

// gateAllocs compares the fresh CLAIM-BATCH sweep against a committed
// baseline artifact: any matching chains point whose batch-plane
// allocs/row grew more than 20% fails the run. Points present in only
// one file (a resized sweep) are ignored, so the gate tracks the plane's
// allocation trajectory without blocking sweep changes.
func gateAllocs(baselinePath string, fresh []byte) error {
	type sweep struct {
		Points []struct {
			Chains int `json:"chains"`
			Batch  struct {
				AllocsPerRow float64 `json:"allocsPerRow"`
			} `json:"batch"`
		} `json:"points"`
	}
	base, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("alloc-baseline: %w", err)
	}
	var was, now sweep
	if err := json.Unmarshal(base, &was); err != nil {
		return fmt.Errorf("alloc-baseline: parse %s: %w", baselinePath, err)
	}
	if err := json.Unmarshal(fresh, &now); err != nil {
		return fmt.Errorf("alloc-baseline: parse fresh sweep: %w", err)
	}
	ref := map[int]float64{}
	for _, p := range was.Points {
		ref[p.Chains] = p.Batch.AllocsPerRow
	}
	for _, p := range now.Points {
		old, ok := ref[p.Chains]
		if !ok || old <= 0 {
			continue
		}
		if p.Batch.AllocsPerRow > old*1.2 {
			return fmt.Errorf("alloc-baseline: chains=%d allocs/row %.2f exceeds baseline %.2f by >20%%",
				p.Chains, p.Batch.AllocsPerRow, old)
		}
		fmt.Printf("alloc-baseline: chains=%d allocs/row %.2f vs baseline %.2f ok\n",
			p.Chains, p.Batch.AllocsPerRow, old)
	}
	return nil
}

// writeTrace captures one traced paper query and writes both export
// formats: the chrome://tracing (Perfetto) trace_event file at path and
// the deterministic JSONL span listing next to it. The critical-path
// attribution prints to stdout.
func writeTrace(path string) error {
	b := harness.CaptureTrace()
	if err := os.WriteFile(path, b.ChromeJSON, 0o644); err != nil {
		return err
	}
	jsonl := strings.TrimSuffix(path, ".json") + ".jsonl"
	if err := os.WriteFile(jsonl, b.JSONL, 0o644); err != nil {
		return err
	}
	fmt.Print(b.Report)
	fmt.Printf("wrote %s and %s\n", path, jsonl)
	return nil
}
