// Command sqpeer-lint is the repo's static-analysis gate: eleven
// SQPeer-specific analyzers enforcing the determinism, logical-clock,
// failure-domain, concurrency and observability invariants of DESIGN.md
// §9 over the packages matched by its arguments (default ./...).
//
// Intraprocedural suite:
//
//	walltime       no wall-clock reads/sleeps in internal packages
//	seededrand     no global math/rand source; explicit seeds only
//	maporder       map iteration order must not leak into output
//	errclass       errors compared with errors.Is, never ==/!= or strings
//	locksafe       no blocking ops while a sync (RW)Mutex is held
//	obsspan        obs spans closed on every return path
//	jsonrow        no JSON of row-carrying rql types on the data plane
//
// Interprocedural tier (cross-package function summaries, see
// internal/lint/summary; cacheable via -summary-cache):
//
//	lockorder      mutex acquisition-order graph must be acyclic
//	bufsafe        pooled wire-buffer lifecycle (double-put, use-after-put,
//	               put-of-escaped)
//	deadlinebound  RPC paths must carry deadlines (CallWithin/SendWithin)
//	goroleak       every spawned goroutine needs a bounded exit
//
// A diagnostic is suppressed only by `//lint:allow <analyzer> <reason>`
// on the offending or preceding line; reasons are mandatory and stale
// directives are errors. Standard passes (copylocks and friends) run via
// `go vet` in the Makefile's lint target; this binary adds only the
// checks the toolchain does not ship. Every run ends with a per-analyzer
// wall-time and finding-count report (sorted by analyzer, so diffable);
// -report also writes it to a file for CI artifacts. Exit status: 0
// clean, 1 findings, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sqpeer/internal/lint/analysis"
	"sqpeer/internal/lint/analyzers/bufsafe"
	"sqpeer/internal/lint/analyzers/deadlinebound"
	"sqpeer/internal/lint/analyzers/errclass"
	"sqpeer/internal/lint/analyzers/goroleak"
	"sqpeer/internal/lint/analyzers/jsonrow"
	"sqpeer/internal/lint/analyzers/lockorder"
	"sqpeer/internal/lint/analyzers/locksafe"
	"sqpeer/internal/lint/analyzers/maporder"
	"sqpeer/internal/lint/analyzers/obsspan"
	"sqpeer/internal/lint/analyzers/seededrand"
	"sqpeer/internal/lint/analyzers/walltime"
	"sqpeer/internal/lint/driver"
	"sqpeer/internal/lint/load"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	walltime.Analyzer,
	seededrand.Analyzer,
	maporder.Analyzer,
	errclass.Analyzer,
	locksafe.Analyzer,
	obsspan.Analyzer,
	jsonrow.Analyzer,
	lockorder.Analyzer,
	bufsafe.Analyzer,
	deadlinebound.Analyzer,
	goroleak.Analyzer,
}

// scope restricts the clock and randomness invariants to the middleware
// proper: cmd/ mains and examples may read the wall clock to report
// to humans. Determinism analyzers (maporder, errclass, locksafe) run
// everywhere. The lint framework itself is exempt from walltime (it is
// tooling, not simulation). The interprocedural tier runs over internal/
// — deadlinebound excluding the network package itself, whose Call/Send
// bodies implement the deadline-free wrappers rather than use them.
var scope = map[string]func(string) bool{
	"walltime":      isInternal,
	"seededrand":    isInternal,
	"obsspan":       isInternal,
	"jsonrow":       isDataPlane,
	"lockorder":     isInternal,
	"bufsafe":       isInternal,
	"goroleak":      isInternal,
	"deadlinebound": isDeadlineScope,
}

func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") &&
		!strings.Contains(pkgPath, "/internal/lint")
}

// isDataPlane scopes jsonrow to the packages that move rows between
// peers: only there does JSON-encoding a row type reintroduce the wire
// format the batch plane replaced. Facade users (harness, examples,
// tests elsewhere) may JSON rows for artifacts and goldens freely.
func isDataPlane(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "/internal/exec") ||
		strings.HasSuffix(pkgPath, "/internal/channel")
}

// isDeadlineScope is isInternal minus the transport implementation.
func isDeadlineScope(pkgPath string) bool {
	return isInternal(pkgPath) && !strings.HasSuffix(pkgPath, "/internal/network")
}

func main() {
	showAllowed := flag.Bool("show-allowed", false, "also print suppressed diagnostics with their reasons")
	list := flag.Bool("help-analyzers", false, "list analyzers and exit")
	cacheDir := flag.String("summary-cache", "", "directory for the interprocedural summary cache (empty = no cache)")
	reportFile := flag.String("report", "", "also write the per-analyzer stats report to this file")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqpeer-lint:", err)
		os.Exit(2)
	}
	findings, stats, err := driver.RunWith(analyzers, pkgs, scope, driver.Options{
		SummaryCacheDir: *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqpeer-lint:", err)
		os.Exit(2)
	}
	failing := driver.Failing(findings)
	for _, f := range findings {
		if f.Suppressed && !*showAllowed {
			continue
		}
		fmt.Println(f.Format())
	}

	report := driver.Stats(stats)
	fmt.Println("--- analyzer report ---")
	for _, line := range report {
		fmt.Println(line)
	}
	if *reportFile != "" {
		if err := os.WriteFile(*reportFile, []byte(strings.Join(report, "\n")+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sqpeer-lint: writing report:", err)
			os.Exit(2)
		}
	}

	if n := len(findings) - len(failing); n > 0 && !*showAllowed {
		fmt.Fprintf(os.Stderr, "sqpeer-lint: %d suppressed (run with -show-allowed to list)\n", n)
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "sqpeer-lint: %d finding(s) in %d package(s)\n", len(failing), len(pkgs))
		os.Exit(1)
	}
}
