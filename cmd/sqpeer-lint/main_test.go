package main

import "testing"

// TestAllAnalyzersRegistered pins the multichecker's composition: every
// analyzer the repo ships must be wired in, so adding a package under
// internal/lint/analyzers without registering it here fails loudly
// rather than silently not running.
func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{
		"walltime",
		"seededrand",
		"maporder",
		"errclass",
		"locksafe",
		"obsspan",
		"jsonrow",
		"lockorder",
		"bufsafe",
		"deadlinebound",
		"goroleak",
	}
	if len(analyzers) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(analyzers), len(want))
	}
	seen := map[string]bool{}
	for _, a := range analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incompletely defined (doc or run missing)", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("analyzer %s not registered in the multichecker", name)
		}
	}
}

// TestInterproceduralTierMarked ensures the four summary-backed
// analyzers request the index (and only they do): a missing flag means
// a pass with a nil Summaries and a silently inert analyzer.
func TestInterproceduralTierMarked(t *testing.T) {
	needs := map[string]bool{
		"lockorder":     true,
		"bufsafe":       true,
		"deadlinebound": true,
		"goroleak":      true,
	}
	for _, a := range analyzers {
		if a.NeedsSummaries != needs[a.Name] {
			t.Errorf("%s: NeedsSummaries = %v, want %v", a.Name, a.NeedsSummaries, needs[a.Name])
		}
	}
}

// TestScopeFunctions pins the package scoping of the interprocedural
// tier.
func TestScopeFunctions(t *testing.T) {
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"lockorder", "sqpeer/internal/exec", true},
		{"lockorder", "sqpeer/internal/lint/summary", false},
		{"lockorder", "sqpeer/cmd/sqpeer-lint", false},
		{"bufsafe", "sqpeer/internal/rql", true},
		{"goroleak", "sqpeer/internal/network", true},
		{"deadlinebound", "sqpeer/internal/network", false},
		{"deadlinebound", "sqpeer/internal/exec", true},
		{"deadlinebound", "sqpeer/internal/dht", true},
	}
	for _, c := range cases {
		accept, ok := scope[c.analyzer]
		if !ok {
			t.Fatalf("no scope entry for %s", c.analyzer)
		}
		if got := accept(c.pkg); got != c.want {
			t.Errorf("scope[%s](%s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
