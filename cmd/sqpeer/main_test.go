package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModes(t *testing.T) {
	cases := []struct {
		name string
		mode string
	}{
		{"paper", "paper"},
		{"hybrid", "hybrid"},
		{"adhoc", "adhoc"},
		{"flood", "flood"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := run(c.mode, "", 6, 4, "vertical", 3, 2, 6, false, true, ""); err != nil {
				t.Fatalf("run(%s): %v", c.mode, err)
			}
		})
	}
}

func TestRunParseOnlyAndErrors(t *testing.T) {
	if err := run("paper", "", 4, 2, "vertical", 3, 2, 3, true, false, ""); err != nil {
		t.Fatalf("parse-only: %v", err)
	}
	if err := run("paper", "garbage", 4, 2, "vertical", 3, 2, 3, false, false, ""); err == nil {
		t.Error("bad query accepted")
	}
	if err := run("nosuch", "", 4, 2, "vertical", 3, 2, 3, false, false, ""); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("paper", "", 4, 2, "diagonal", 3, 2, 3, false, false, ""); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run("flood", "", 4, 2, "vertical", 3, 2, 3, false, false, "127.0.0.1:0"); err == nil {
		t.Error("-debug-addr accepted outside paper mode")
	}
}

func TestRunDistributions(t *testing.T) {
	for _, dist := range []string{"vertical", "horizontal", "mixed"} {
		if err := run("hybrid", "", 5, 4, dist, 3, 2, 3, false, false, ""); err != nil {
			t.Fatalf("hybrid/%s: %v", dist, err)
		}
	}
}

func TestRunCustomMode(t *testing.T) {
	dir := t.TempDir()
	schemaFile := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(schemaFile, []byte("schema http://demo#\nclass A\nclass B\nproperty p A -> B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dataFile := filepath.Join(dir, "p1.nt")
	if err := os.WriteFile(dataFile, []byte("<http://d#x> <http://demo#p> <http://d#y> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	query := `SELECT X FROM {X}d:p{Y} USING NAMESPACE d = &http://demo#&`
	if err := runCustom(schemaFile, dataFile, query, true, ""); err != nil {
		t.Fatalf("runCustom: %v", err)
	}
	// Error paths.
	if err := runCustom(filepath.Join(dir, "nosuch"), dataFile, query, false, ""); err == nil {
		t.Error("missing schema accepted")
	}
	if err := runCustom(schemaFile, "", query, false, ""); err == nil {
		t.Error("missing data accepted")
	}
	if err := runCustom(schemaFile, dataFile, "", false, ""); err == nil {
		t.Error("missing query accepted")
	}
	if err := runCustom(schemaFile, filepath.Join(dir, "ghost.nt"), query, false, ""); err == nil {
		t.Error("missing data file accepted")
	}
}
