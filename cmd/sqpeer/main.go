// Command sqpeer is a workbench for the SQPeer middleware: it builds a
// SON over synthetic peer bases (or the paper's Figure-2 fixture), runs
// RQL queries against it, and prints the routing annotation, the raw and
// optimized plans, the answer, and the network traffic the query cost.
//
// Usage:
//
//	sqpeer -mode paper -query "<RQL>"          # Figure-2 peers P1..P4
//	sqpeer -mode hybrid -peers 20 -dist vertical -chains 10
//	sqpeer -mode adhoc  -peers 20 -dist mixed
//	sqpeer -mode flood  -peers 20 -ttl 5
//	sqpeer -parse-only -query "<RQL>"          # just show the pattern
//
// Without -query, the chain query over the synthetic schema (or the
// paper's Figure-1 query in paper mode) is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"sqpeer/internal/debugsrv"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/obs"
	"sqpeer/internal/overlay"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/rdf"
	"sqpeer/internal/rql"
)

func main() {
	var (
		mode       = flag.String("mode", "paper", "paper | hybrid | adhoc | flood")
		query      = flag.String("query", "", "RQL query text (defaults per mode)")
		peers      = flag.Int("peers", 12, "number of peers (synthetic modes)")
		chains     = flag.Int("chains", 8, "instance chains (synthetic modes)")
		distName   = flag.String("dist", "vertical", "vertical | horizontal | mixed")
		props      = flag.Int("props", 4, "schema chain length (synthetic modes)")
		qlen       = flag.Int("qlen", 3, "query chain length (synthetic modes)")
		ttl        = flag.Int("ttl", 5, "flooding TTL")
		parseOnly  = flag.Bool("parse-only", false, "only parse and show the query pattern")
		verbose    = flag.Bool("v", false, "print plans and annotations")
		schemaFile = flag.String("schema-file", "", "text-format schema file (custom mode)")
		dataFiles  = flag.String("data", "", "comma-separated N-Triples base files, one peer each (custom mode)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics and /debug endpoints on this address after the query and wait for interrupt (paper and custom modes)")
	)
	flag.Parse()

	if *schemaFile != "" {
		if err := runCustom(*schemaFile, *dataFiles, *query, *verbose, *debugAddr); err != nil {
			fmt.Fprintln(os.Stderr, "sqpeer:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*mode, *query, *peers, *chains, *distName, *props, *qlen, *ttl, *parseOnly, *verbose, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, "sqpeer:", err)
		os.Exit(1)
	}
}

// opsPlane bundles the live operations plane the -debug-addr flag turns
// on: a shared metrics registry, the unified event log (stamped by the
// simulated network's logical clock), one tracer for the query root, and
// a flight recorder per peer — served over HTTP after the query runs.
type opsPlane struct {
	addr   string
	reg    *obs.Registry
	events *obs.EventLog
	tracer *obs.Tracer
	clock  func() float64
	recs   []*obs.FlightRecorder
}

func newOpsPlane(net *network.Network, addr string) *opsPlane {
	if addr == "" {
		return nil
	}
	return &opsPlane{
		addr:   addr,
		reg:    obs.NewRegistry(),
		events: obs.NewEventLog(net.NowMS),
		tracer: obs.NewTracer(),
		clock:  net.NowMS,
	}
}

// configure decorates a peer config with the plane's shared pieces (a
// no-op on a nil plane).
func (o *opsPlane) configure(cfg peer.Config) peer.Config {
	if o == nil {
		return cfg
	}
	cfg.Obs, cfg.Events, cfg.Tracer = o.reg, o.events, o.tracer
	rc := obs.DefaultRecorderConfig()
	cfg.FlightRec = &rc
	return cfg
}

// adopt collects a constructed peer's flight recorder for /debug/flightrec.
func (o *opsPlane) adopt(p *peer.Peer) {
	if o == nil || p.Recorder == nil {
		return
	}
	o.recs = append(o.recs, p.Recorder)
}

// serve evaluates the SLO rules once over the finished run, starts the
// debug listener and blocks until interrupted.
func (o *opsPlane) serve() error {
	if o == nil {
		return nil
	}
	slo := obs.NewSLOEvaluator(o.reg, o.clock, nil)
	// Adoption order follows peer construction (map order in the
	// fully-connected fixture), so pick the dump target by sorted peer
	// ID: the root peer — lowest ID — carries the query-scoped context.
	sort.Slice(o.recs, func(i, j int) bool { return o.recs[i].PeerID() < o.recs[j].PeerID() })
	if len(o.recs) > 0 {
		root := o.recs[0]
		slo.OnAlert = func(a obs.Alert) { root.TriggerDump("slo:"+a.Rule, "", a.TMS) }
	}
	slo.Eval()
	srv := &debugsrv.Server{Registry: o.reg, Events: o.events, Recorders: o.recs, SLO: slo}
	bound, err := srv.Start(o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("\noperations plane on http://%s — try:\n", bound)
	for _, ep := range []string{"/metrics", "/healthz", "/debug/events", "/debug/flightrec", "/debug/slo"} {
		fmt.Printf("  curl http://%s%s\n", bound, ep)
	}
	fmt.Println("interrupt (ctrl-c) to exit")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Stop()
	return nil
}

func run(mode, query string, nPeers, chains int, distName string, props, qlen, ttl int, parseOnly, verbose bool, debugAddr string) error {
	var dist gen.Distribution
	switch distName {
	case "vertical":
		dist = gen.Vertical
	case "horizontal":
		dist = gen.Horizontal
	case "mixed":
		dist = gen.Mixed
	default:
		return fmt.Errorf("unknown distribution %q", distName)
	}

	var schema *rdf.Schema
	var bases map[pattern.PeerID]*rdf.Base
	if mode == "paper" {
		schema = gen.PaperSchema()
		bases = gen.PaperBases(chains)
		if query == "" {
			query = gen.PaperRQL
		}
	} else {
		syn := gen.NewSynthetic(props, true)
		schema = syn.Schema
		bases = syn.Bases(nPeers, chains, dist)
		if query == "" {
			query = syn.RQL(1, qlen)
		}
	}

	compiled, err := rql.ParseAndAnalyze(query, schema)
	if err != nil {
		return err
	}
	fmt.Println("query pattern:", compiled.Pattern)
	if parseOnly {
		return nil
	}

	if debugAddr != "" && mode != "paper" {
		return fmt.Errorf("-debug-addr is supported in paper mode (and custom mode via -schema-file)")
	}
	net := network.New()
	switch mode {
	case "paper":
		return runFullyConnected(net, schema, bases, query, compiled, verbose, newOpsPlane(net, debugAddr))
	case "hybrid":
		return runHybrid(net, schema, bases, query, verbose)
	case "adhoc":
		return runAdhoc(net, schema, bases, query)
	case "flood":
		return runFlood(net, schema, bases, query, ttl)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// runFullyConnected wires every peer with full mutual knowledge (the
// paper-fixture mode) and executes at the first peer.
func runFullyConnected(net *network.Network, schema *rdf.Schema, bases map[pattern.PeerID]*rdf.Base, query string, compiled *rql.Compiled, verbose bool, ops *opsPlane) error {
	var nodes []*peer.Peer
	for id, base := range bases {
		cfg := ops.configure(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: base})
		p, err := peer.New(cfg, net)
		if err != nil {
			return err
		}
		ops.adopt(p)
		nodes = append(nodes, p)
	}
	// Sort so the fallback root (nodes[0] when no P1 exists) does not
	// depend on map iteration order.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	root := nodes[0]
	for _, n := range nodes {
		if n.ID == "P1" {
			root = n
		}
	}
	net.ResetCounters()
	pr, err := root.PlanQuery(compiled.Pattern)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Println("annotation:   ", pr.Annotated)
		fmt.Println("raw plan:     ", pr.Raw)
		fmt.Println("optimized plan:", pr.Optimized)
		fmt.Print(root.Engine.Cost.Explain(pr.Optimized.Root, root.ID))
	}
	rows, err := root.Ask(query)
	if err != nil {
		return err
	}
	printOutcome(rows, net, string(root.ID))
	return ops.serve()
}

func runHybrid(net *network.Network, schema *rdf.Schema, bases map[pattern.PeerID]*rdf.Base, query string, verbose bool) error {
	h := overlay.NewHybrid(net, schema)
	if _, err := h.AddSuperPeer("SP1"); err != nil {
		return err
	}
	var first pattern.PeerID
	for id, base := range bases {
		if _, err := h.AddSimplePeer(id, base, "SP1"); err != nil {
			return err
		}
		if first == "" || id < first {
			first = id
		}
	}
	net.ResetCounters()
	if verbose {
		p, _ := h.Peer(first)
		c, err := p.Compile(query)
		if err != nil {
			return err
		}
		ann, err := p.RequestRouting("SP1", c.Pattern)
		if err != nil {
			return err
		}
		fmt.Println("super-peer annotation:", ann)
	}
	rows, err := h.Query(first, query)
	if err != nil {
		return err
	}
	printOutcome(rows, net, string(first))
	return nil
}

func runAdhoc(net *network.Network, schema *rdf.Schema, bases map[pattern.PeerID]*rdf.Base, query string) error {
	a := overlay.NewAdhoc(net, schema)
	// Ring topology: each peer neighbors its predecessor.
	var prev pattern.PeerID
	var first pattern.PeerID
	var ids []pattern.PeerID
	for id := range bases {
		ids = append(ids, id)
	}
	sortPeerIDs(ids)
	for _, id := range ids {
		var nbrs []pattern.PeerID
		if prev != "" {
			nbrs = append(nbrs, prev)
		}
		if _, err := a.AddPeer(id, bases[id], nbrs...); err != nil {
			return err
		}
		if first == "" {
			first = id
		}
		prev = id
	}
	a.Connect(first, prev) // close the ring
	net.ResetCounters()
	rows, err := a.Query(first, query)
	if err != nil {
		return err
	}
	printOutcome(rows, net, string(first))
	return nil
}

func runFlood(net *network.Network, schema *rdf.Schema, bases map[pattern.PeerID]*rdf.Base, query string, ttl int) error {
	f := overlay.NewFlooding(net, schema)
	var prev pattern.PeerID
	var first pattern.PeerID
	var ids []pattern.PeerID
	for id := range bases {
		ids = append(ids, id)
	}
	sortPeerIDs(ids)
	for _, id := range ids {
		var nbrs []pattern.PeerID
		if prev != "" {
			nbrs = append(nbrs, prev)
		}
		if _, err := f.AddPeer(id, bases[id], nbrs...); err != nil {
			return err
		}
		if first == "" {
			first = id
		}
		prev = id
	}
	net.ResetCounters()
	res, err := f.Query(first, query, ttl)
	if err != nil {
		return err
	}
	fmt.Printf("flooding reached %d peers\n", res.PeersReached)
	printOutcome(res.Rows, net, string(first))
	return nil
}

func printOutcome(rows *rql.ResultSet, net *network.Network, root string) {
	fmt.Printf("\nanswer at %s:\n%s", root, rows)
	c := net.Counters()
	fmt.Printf("\nnetwork: %d messages, %d bytes, %.1f simulated ms\n",
		c.Messages, c.Bytes, c.SimulatedMS)
}

// runCustom loads a user schema and one base file per peer, wires a
// fully-known SON, and answers the query at the first peer.
func runCustom(schemaFile, dataFiles, query string, verbose bool, debugAddr string) error {
	sf, err := os.Open(schemaFile)
	if err != nil {
		return err
	}
	defer sf.Close()
	schema, err := rdf.ParseSchemaText(sf)
	if err != nil {
		return err
	}
	if dataFiles == "" {
		return fmt.Errorf("custom mode needs -data file1[,file2,...]")
	}
	if query == "" {
		return fmt.Errorf("custom mode needs -query")
	}
	bases := map[pattern.PeerID]*rdf.Base{}
	for i, path := range strings.Split(dataFiles, ",") {
		f, err := os.Open(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		base, err := rdf.ReadBase(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		bases[pattern.PeerID(fmt.Sprintf("P%d", i+1))] = base
	}
	compiled, err := rql.ParseAndAnalyze(query, schema)
	if err != nil {
		return err
	}
	fmt.Println("query pattern:", compiled.Pattern)
	net := network.New()
	return runFullyConnected(net, schema, bases, query, compiled, verbose, newOpsPlane(net, debugAddr))
}

func sortPeerIDs(ids []pattern.PeerID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
