package sqpeer

import (
	"sqpeer/internal/network"
	"sqpeer/internal/overlay"
	"sqpeer/internal/rdf"
)

// SON architectures (paper §3).
type (
	// HybridSON is the super-peer architecture: routing at super-peers,
	// processing at simple-peers, complete plans guaranteed.
	HybridSON = overlay.Hybrid
	// AdhocSON is the self-adaptive architecture: neighbor knowledge
	// only, partial plans forwarded with interleaved routing/processing.
	AdhocSON = overlay.Adhoc
	// FloodingNetwork is the Gnutella-style baseline.
	FloodingNetwork = overlay.Flooding
	// FloodResult is a flooded query's outcome.
	FloodResult = overlay.FloodResult
)

// NewHybridSON returns an empty hybrid SON over the community schema.
func NewHybridSON(net *network.Network, schema *rdf.Schema) *HybridSON {
	return overlay.NewHybrid(net, schema)
}

// NewAdhocSON returns an empty ad-hoc SON over the community schema.
func NewAdhocSON(net *network.Network, schema *rdf.Schema) *AdhocSON {
	return overlay.NewAdhoc(net, schema)
}

// NewFloodingNetwork returns an empty flooding baseline network.
func NewFloodingNetwork(net *network.Network, schema *rdf.Schema) *FloodingNetwork {
	return overlay.NewFlooding(net, schema)
}
