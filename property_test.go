// Randomized cross-layer properties: over arbitrary peer populations and
// data placements, distributed execution must equal centralized
// evaluation, optimization must preserve answers, and routing must be
// extensionally complete (every peer holding matching data is found).
package sqpeer_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sqpeer/internal/exec"
	"sqpeer/internal/gen"
	"sqpeer/internal/network"
	"sqpeer/internal/optimizer"
	"sqpeer/internal/pattern"
	"sqpeer/internal/peer"
	"sqpeer/internal/plan"
	"sqpeer/internal/rdf"
	"sqpeer/internal/routing"
	"sqpeer/internal/rql"
)

// randomSystem builds 2–5 peers over the paper schema with randomly
// placed prop1/prop2/prop4 pairs drawn from a small shared resource pool
// (so cross-peer joins occur), everyone knowing everyone.
func randomSystem(seed int64) (map[pattern.PeerID]*peer.Peer, *rdf.Base) {
	rng := rand.New(rand.NewSource(seed))
	schema := gen.PaperSchema()
	net := network.New()
	nPeers := 2 + rng.Intn(4)
	merged := rdf.NewBase()
	peers := map[pattern.PeerID]*peer.Peer{}
	props := []rdf.IRI{gen.N1("prop1"), gen.N1("prop2"), gen.N1("prop4")}
	for i := 0; i < nPeers; i++ {
		id := pattern.PeerID(fmt.Sprintf("R%d", i))
		base := rdf.NewBase()
		for k := 0; k < rng.Intn(12); k++ {
			p := props[rng.Intn(len(props))]
			s := rdf.IRI(fmt.Sprintf("http://pool#r%d", rng.Intn(8)))
			o := rdf.IRI(fmt.Sprintf("http://pool#r%d", rng.Intn(8)))
			tr := rdf.Statement(s, p, o)
			base.Add(tr)
			merged.Add(tr)
		}
		pe, err := peer.New(peer.Config{ID: id, Kind: peer.SimplePeer, Schema: schema, Base: base}, net)
		if err != nil {
			panic(err)
		}
		peers[id] = pe
	}
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.Learn(b.Advertisement())
			}
		}
	}
	return peers, merged
}

func anyPeer(peers map[pattern.PeerID]*peer.Peer) *peer.Peer {
	var best *peer.Peer
	for _, p := range peers {
		if best == nil || p.ID < best.ID {
			best = p
		}
	}
	return best
}

// TestPropertyDistributedEqualsCentralized: for random placements, the
// distributed answer (raw plan, then optimized plan, under each shipping
// policy) equals centralized evaluation over the union of the bases.
func TestPropertyDistributedEqualsCentralized(t *testing.T) {
	schema := gen.PaperSchema()
	compiled, err := rql.ParseAndAnalyze(gen.PaperRQL, schema)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		peers, merged := randomSystem(seed)
		truth, err := rql.Eval(compiled, merged)
		if err != nil {
			return false
		}
		want := fmt.Sprint(truth.Sorted())

		root := anyPeer(peers)
		pr, err := root.PlanQuery(compiled.Pattern)
		if err != nil {
			return false
		}
		for _, policy := range []optimizer.ShippingPolicy{
			optimizer.DataShipping, optimizer.QueryShipping, optimizer.HybridShipping,
		} {
			root.Engine.Policy = policy
			for _, pl := range []*plan.Plan{pr.Raw, pr.Optimized} {
				rows, err := root.Engine.Execute(pl)
				if err != nil {
					// A system where some pattern has no provider yields a
					// hole; centralized truth must then be empty too.
					var he *exec.HoleError
					if errors.As(err, &he) && truth.Len() == 0 {
						continue
					}
					return false
				}
				got := fmt.Sprint(rows.Project(compiled.Pattern.Projections).Sorted())
				if got != want {
					t.Logf("seed=%d policy=%s plan=%s\n got %s\nwant %s", seed, policy, pl, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRoutingExtensionallyComplete: every peer whose base
// produces rows for a path pattern must be annotated on it (no false
// negatives — the soundness of active-schema derivation plus subsumption
// routing).
func TestPropertyRoutingExtensionallyComplete(t *testing.T) {
	schema := gen.PaperSchema()
	q := gen.PaperQuery()
	prop := func(seed int64) bool {
		peers, _ := randomSystem(seed)
		root := anyPeer(peers)
		ann := routing.NewRouter(schema, root.Registry).Route(q)
		for _, qp := range q.Patterns {
			annotated := map[pattern.PeerID]bool{}
			for _, id := range ann.PeersFor(qp.ID) {
				annotated[id] = true
			}
			for id, pe := range peers {
				rows := rql.EvalPathPattern(pe.Base, schema, qp)
				if rows.Len() > 0 && !annotated[id] {
					t.Logf("seed=%d: peer %s has %d rows for %s but was not annotated",
						seed, id, rows.Len(), qp.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOptimizationPreservesPlanSemantics: for random annotations,
// the optimizer's output always touches a subset of the original peers
// and never introduces or drops holes.
func TestPropertyOptimizationPreservesPlanSemantics(t *testing.T) {
	q := gen.PaperQuery()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ann := pattern.NewAnnotated(q)
		for _, qp := range q.Patterns {
			for i := 0; i < 1+rng.Intn(4); i++ {
				ann.Annotate(qp.ID, pattern.PeerID(fmt.Sprintf("R%d", rng.Intn(5))), nil)
			}
		}
		raw, err := plan.Generate(ann)
		if err != nil {
			return false
		}
		opt := optimizer.Optimize(raw, optimizer.Options{})
		if plan.HasHoles(opt.Root) != plan.HasHoles(raw.Root) {
			return false
		}
		rawPeers := map[pattern.PeerID]bool{}
		for _, id := range plan.Peers(raw.Root) {
			rawPeers[id] = true
		}
		for _, id := range plan.Peers(opt.Root) {
			if !rawPeers[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPlanSerializationRoundTrips: random plans survive the wire
// format unchanged.
func TestPropertyPlanSerializationRoundTrips(t *testing.T) {
	q := gen.PaperQuery()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ann := pattern.NewAnnotated(q)
		for _, qp := range q.Patterns {
			for i := 0; i < rng.Intn(4); i++ { // may leave holes
				ann.Annotate(qp.ID, pattern.PeerID(fmt.Sprintf("R%d", rng.Intn(5))), nil)
			}
		}
		p, err := plan.Generate(ann)
		if err != nil {
			return false
		}
		candidates := []*plan.Plan{p, optimizer.Optimize(p, optimizer.Options{})}
		for _, c := range candidates {
			data, err := plan.Marshal(c)
			if err != nil {
				return false
			}
			back, err := plan.Unmarshal(data)
			if err != nil {
				return false
			}
			if !plan.Equal(c.Root, back.Root) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
